"""Asynchronous job queue: worker threads, in-flight dedup, back-pressure.

The daemon cannot run simulations on its HTTP threads — a submission must
return immediately with a job id the client polls.  :class:`JobQueue` owns
that decoupling:

* a **bounded** FIFO of queued jobs — when it is full, :meth:`submit`
  raises :class:`QueueFull` and the daemon answers ``429`` instead of
  accepting unbounded work;
* a pool of **worker threads** draining the queue through a single execute
  callable (the daemon binds :func:`~repro.service.requests.execute_request`
  to its shared store there); and
* **in-flight deduplication** by content address: submitting a request whose
  key matches a queued or running job attaches the caller to that job
  instead of queueing a second computation.  Completed jobs are *not*
  deduplicated — a re-submission becomes a new job, which the result store
  then serves entirely from cache (the cheap ~475x replay path).

Jobs are kept in memory (bounded by ``history_limit``, oldest finished jobs
evicted first); the durable artefacts live in the result store.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, get_registry
from repro.obs.trace import trace_id_for_key

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"

JOB_STATES = (QUEUED, RUNNING, DONE, ERROR)


class QueueFull(RuntimeError):
    """The pending queue is at capacity; the caller should back off (HTTP 429)."""


@dataclass
class Job:
    """One submitted request and everything known about its execution.

    Mutable fields (``status``, timings, results, cache counters) are
    written by a worker thread while HTTP threads read them, so every
    mutation and :meth:`snapshot` serialise on the owning queue's lock
    (``owner_lock``, injected at submission).  A standalone job built in a
    test has no owner and falls back to unlocked access.
    """

    id: str
    key: str
    request: Any  # anything content-addressed: .key() and .kind
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # Monotonic twins of the wall-clock stamps: duration arithmetic must
    # survive a wall-clock step (NTP slew mid-job), so every duration in
    # snapshot() derives from these, never from the *_at fields.
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    rows: Optional[List[Dict[str, Any]]] = None
    description: str = ""
    error: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    subscribers: int = 1
    done_event: threading.Event = field(default_factory=threading.Event)
    owner_lock: Optional[threading.Lock] = field(
        default=None, repr=False, compare=False
    )

    def _guard(self) -> ContextManager[Any]:
        return self.owner_lock if self.owner_lock is not None else nullcontext()

    @property
    def finished(self) -> bool:
        return self.status in (DONE, ERROR)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes (or ``timeout`` elapses)."""
        return self.done_event.wait(timeout)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able status view (everything except the result rows).

        Taken under the queue lock so a concurrent worker transition cannot
        produce a torn view (e.g. ``status == "done"`` with ``finished_at``
        still ``None``).
        """
        with self._guard():
            queue_wait_s = (
                self.started_mono - self.submitted_mono
                if self.started_mono is not None
                else None
            )
            run_s = (
                self.finished_mono - self.started_mono
                if self.finished_mono is not None and self.started_mono is not None
                else None
            )
            total_s = (
                self.finished_mono - self.submitted_mono
                if self.finished_mono is not None
                else None
            )
            return {
                "id": self.id,
                "key": self.key,
                "kind": self.request.kind,
                "status": self.status,
                "trace_id": trace_id_for_key(self.key),
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "queue_wait_s": queue_wait_s,
                "run_s": run_s,
                "total_s": total_s,
                "subscribers": self.subscribers,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "error": self.error,
            }


ExecuteCallable = Callable[[Any], Tuple[List[Dict[str, Any]], str, int, int]]
"""Runs a submission, returning ``(rows, description, cache_hits, cache_misses)``."""


class JobQueue:
    """Bounded multi-worker job queue with in-flight request deduplication."""

    def __init__(
        self,
        execute: ExecuteCallable,
        *,
        workers: int = 2,
        capacity: int = 16,
        history_limit: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._execute = execute
        self.capacity = capacity
        registry = registry if registry is not None else get_registry()
        self._queue_wait = registry.histogram(
            "repro_job_queue_wait_seconds",
            "Seconds a job waited in the queue before a worker picked it up.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self.history_limit = max(history_limit, capacity + workers)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._active_by_key: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self.completed = 0
        self.failed = 0
        self.deduplicated = 0
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lookup -------------------------------------------------

    def submit(self, request: Any) -> Tuple[Job, bool]:
        """Enqueue ``request``; returns ``(job, attached)``.

        ``request`` is any content-addressed submission — a
        :class:`~repro.service.requests.SimulationRequest` or a
        :class:`~repro.campaign.graph.Campaign` — i.e. anything with a
        ``key()`` content address and a ``kind`` tag.  ``attached`` is True
        when the request deduplicated onto an existing queued/running job
        instead of creating a new one.  Raises :class:`QueueFull` when the
        pending queue is at capacity.
        """
        key = request.key()
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is closed")
            active_id = self._active_by_key.get(key)
            if active_id is not None:
                job = self._jobs[active_id]
                if not job.finished:
                    job.subscribers += 1
                    self.deduplicated += 1
                    return job, True
            job = Job(
                id=f"job-{next(self._ids)}",
                key=key,
                request=request,
                owner_lock=self._lock,
            )
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise QueueFull(
                    f"job queue is at capacity ({self.capacity} pending); retry later"
                ) from None
            self._jobs[job.id] = job
            self._active_by_key[key] = job.id
            self._evict_history()
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> Dict[str, Any]:
        """Queue-level counters for the ``/stats`` endpoint."""
        p50 = self._queue_wait.quantile(0.5)
        p99 = self._queue_wait.quantile(0.99)
        with self._lock:
            by_status: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job.status] += 1
            return {
                "capacity": self.capacity,
                "queue_depth": self._queue.qsize(),
                "jobs": by_status,
                "completed": self.completed,
                "failed": self.failed,
                "deduplicated": self.deduplicated,
                "queue_wait_p50_ms": p50 * 1000.0 if p50 is not None else None,
                "queue_wait_p99_ms": p99 * 1000.0 if p99 is not None else None,
            }

    # -- worker side ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                # Shutdown sentinel: recycle it for the next worker (close()
                # enqueues only one) and exit.
                self._queue.task_done()
                self._propagate_shutdown()
                return
            with self._lock:
                job.started_at = time.time()
                job.started_mono = time.monotonic()
                job.status = RUNNING
                wait_s = job.started_mono - job.submitted_mono
            self._queue_wait.observe(wait_s)
            try:
                rows, description, hits, misses = self._execute(job.request)
            except Exception as error:  # noqa: BLE001 - jobs report any failure
                outcome: Optional[Tuple] = None
                failure = f"{type(error).__name__}: {error}"
            else:
                outcome = (rows, description, hits, misses)
                failure = None
            # All result fields flip together with the status, under the
            # lock, so a concurrent snapshot()/stats() can never observe a
            # finished status with half-written results or timings.
            with self._lock:
                job.finished_at = time.time()
                job.finished_mono = time.monotonic()
                if outcome is None:
                    job.error = failure
                    job.status = ERROR
                    self.failed += 1
                else:
                    job.rows, job.description, job.cache_hits, job.cache_misses = (
                        outcome
                    )
                    job.status = DONE
                    self.completed += 1
                if self._active_by_key.get(job.key) == job.id:
                    del self._active_by_key[job.key]
            job.done_event.set()
            self._queue.task_done()

    def _propagate_shutdown(self) -> None:
        # Hand the single shutdown sentinel to the next worker.  The slot we
        # just freed is available and submit() is closed, so this cannot
        # block; should a raced slot appear full anyway, cancel a pending
        # job to make room (close() already cancelled the rest).
        while True:
            try:
                self._queue.put_nowait(None)
                return
            except queue.Full:  # pragma: no cover - submit() is closed
                self._cancel_one_pending()

    def _cancel_one_pending(self) -> bool:
        """Pop one queued job and fail it as cancelled; False when empty."""
        try:
            job = self._queue.get_nowait()
        except queue.Empty:
            return False
        self._queue.task_done()
        if job is None:
            # Put a raced sentinel straight back — there is room now.
            self._queue.put_nowait(None)
            return True
        with self._lock:
            job.finished_at = time.time()
            job.finished_mono = time.monotonic()
            job.error = "job queue closed before execution"
            job.status = ERROR
            self.failed += 1
            if self._active_by_key.get(job.key) == job.id:
                del self._active_by_key[job.key]
        job.done_event.set()
        return True

    def _evict_history(self) -> None:
        # Called under self._lock: drop oldest *finished* jobs over the cap.
        # Unfinished jobs are never evicted — when everything over the cap
        # is still live, the history simply stays oversized for a while.
        while len(self._jobs) > self.history_limit:
            for job_id, job in self._jobs.items():
                if job.finished:
                    del self._jobs[job_id]
                    break
            else:
                return

    def close(self, *, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work, cancel pending jobs and join the workers.

        Queued-but-unstarted jobs fail with ``"job queue closed before
        execution"`` (their waiters are released); jobs already running are
        given ``timeout`` seconds to finish.  ``close`` never blocks
        indefinitely: the old implementation enqueued one blocking sentinel
        per worker, which deadlocked when the pending queue was full and a
        worker was stuck on a long job — the sentinel waited behind jobs
        that would never drain.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Drain the pending queue first (nothing can refill it now), then a
        # single non-blocking sentinel shuts the workers down in turn.
        while self._cancel_one_pending():
            pass
        try:
            self._queue.put_nowait(None)
        except queue.Full:  # pragma: no cover - capacity >= 1 and just drained
            pass
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
