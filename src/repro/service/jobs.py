"""Asynchronous job queue: worker threads, in-flight dedup, back-pressure.

The daemon cannot run simulations on its HTTP threads — a submission must
return immediately with a job id the client polls.  :class:`JobQueue` owns
that decoupling:

* a **bounded** FIFO of queued jobs — when it is full, :meth:`submit`
  raises :class:`QueueFull` and the daemon answers ``429`` instead of
  accepting unbounded work;
* a pool of **worker threads** draining the queue through a single execute
  callable (the daemon binds :func:`~repro.service.requests.execute_request`
  to its shared store there); and
* **in-flight deduplication** by content address: submitting a request whose
  key matches a queued or running job attaches the caller to that job
  instead of queueing a second computation.  Completed jobs are *not*
  deduplicated — a re-submission becomes a new job, which the result store
  then serves entirely from cache (the cheap ~475x replay path).

Jobs are kept in memory (bounded by ``history_limit``, oldest finished jobs
evicted first); the durable artefacts live in the result store.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.requests import SimulationRequest

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"

JOB_STATES = (QUEUED, RUNNING, DONE, ERROR)


class QueueFull(RuntimeError):
    """The pending queue is at capacity; the caller should back off (HTTP 429)."""


@dataclass
class Job:
    """One submitted request and everything known about its execution."""

    id: str
    key: str
    request: SimulationRequest
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    rows: Optional[List[Dict[str, Any]]] = None
    description: str = ""
    error: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    subscribers: int = 1
    done_event: threading.Event = field(default_factory=threading.Event)

    @property
    def finished(self) -> bool:
        return self.status in (DONE, ERROR)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes (or ``timeout`` elapses)."""
        return self.done_event.wait(timeout)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able status view (everything except the result rows)."""
        return {
            "id": self.id,
            "key": self.key,
            "kind": self.request.kind,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "subscribers": self.subscribers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "error": self.error,
        }


ExecuteCallable = Callable[
    [SimulationRequest], Tuple[List[Dict[str, Any]], str, int, int]
]
"""Runs a request, returning ``(rows, description, cache_hits, cache_misses)``."""


class JobQueue:
    """Bounded multi-worker job queue with in-flight request deduplication."""

    def __init__(
        self,
        execute: ExecuteCallable,
        *,
        workers: int = 2,
        capacity: int = 16,
        history_limit: int = 1024,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._execute = execute
        self.capacity = capacity
        self.history_limit = max(history_limit, capacity + workers)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._active_by_key: Dict[str, str] = {}
        self._ids = itertools.count(1)
        self.completed = 0
        self.failed = 0
        self.deduplicated = 0
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lookup -------------------------------------------------

    def submit(self, request: SimulationRequest) -> Tuple[Job, bool]:
        """Enqueue ``request``; returns ``(job, attached)``.

        ``attached`` is True when the request deduplicated onto an existing
        queued/running job instead of creating a new one.  Raises
        :class:`QueueFull` when the pending queue is at capacity.
        """
        key = request.key()
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is closed")
            active_id = self._active_by_key.get(key)
            if active_id is not None:
                job = self._jobs[active_id]
                if not job.finished:
                    job.subscribers += 1
                    self.deduplicated += 1
                    return job, True
            job = Job(id=f"job-{next(self._ids)}", key=key, request=request)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise QueueFull(
                    f"job queue is at capacity ({self.capacity} pending); retry later"
                ) from None
            self._jobs[job.id] = job
            self._active_by_key[key] = job.id
            self._evict_history()
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> Dict[str, Any]:
        """Queue-level counters for the ``/stats`` endpoint."""
        with self._lock:
            by_status: Dict[str, int] = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job.status] += 1
            return {
                "capacity": self.capacity,
                "queue_depth": self._queue.qsize(),
                "jobs": by_status,
                "completed": self.completed,
                "failed": self.failed,
                "deduplicated": self.deduplicated,
            }

    # -- worker side ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            job.started_at = time.time()
            job.status = RUNNING
            try:
                rows, description, hits, misses = self._execute(job.request)
            except Exception as error:  # noqa: BLE001 - jobs report any failure
                job.error = f"{type(error).__name__}: {error}"
                job.status = ERROR
            else:
                job.rows = rows
                job.description = description
                job.cache_hits = hits
                job.cache_misses = misses
                job.status = DONE
            finally:
                job.finished_at = time.time()
                with self._lock:
                    if self._active_by_key.get(job.key) == job.id:
                        del self._active_by_key[job.key]
                    if job.status == DONE:
                        self.completed += 1
                    else:
                        self.failed += 1
                job.done_event.set()
                self._queue.task_done()

    def _evict_history(self) -> None:
        # Called under self._lock: drop oldest *finished* jobs over the cap.
        while len(self._jobs) > self.history_limit:
            for job_id, job in self._jobs.items():
                if job.finished:
                    del self._jobs[job_id]
                    break
            else:
                return

    def close(self, *, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work and join the worker threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
