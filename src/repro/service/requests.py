"""The shared request layer: one config-derivation path for CLI and daemon.

A :class:`SimulationRequest` is a validated, canonically-normalised
description of one runnable workload — exactly the configuration a
``repro sweep``/``network``/``protocol`` CLI invocation derives from its
flags, as plain JSON-able data.  Both front ends build requests through the
same constructors (:func:`sweep_request`, :func:`network_request`,
:func:`protocol_request`, or :func:`request_from_dict` for an HTTP payload)
and both execute them through :func:`execute_request`, so a job submitted
over HTTP and the equivalent CLI command run the *same* grid, configs,
seeds and engine — and therefore produce bit-identical metric rows.

Every request has a content address (:meth:`SimulationRequest.key` — the
SHA-256 of its canonical JSON) which the daemon uses to deduplicate
identical submissions in flight; the underlying per-task
:class:`~repro.runtime.store.ResultStore` keys are finer-grained, so two
*different* requests that share grid points still share cache entries.

Engine caveat (same as the CLI): when a ``batched`` sweep runs through the
runtime (``executor``/``store`` attached), it executes one grid point per
task — the per-point batched convention — rather than the fused whole-grid
launch, so sampled trajectories differ from a store-less run at the same
seed while remaining statistically equivalent.  Per-seed (``loop``/
``vectorized``) engines and single-point batched runs are bit-identical on
every path.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.backends import BACKENDS, PRECISIONS
from repro.experiments import (
    NETWORK_ENGINES,
    NETWORK_REPLICATIONS,
    PROTOCOL_ENGINES,
    PROTOCOL_REPLICATIONS,
    ExperimentConfig,
    ParameterGrid,
    ResultTable,
    dynamics_grid_replication,
    dynamics_point_replication,
    run_replications,
    run_sweep,
)
from repro.runtime.options import ExecutionOptions, resolve_options
from repro.runtime.store import canonical_json

SWEEP = "sweep"
NETWORK = "network"
PROTOCOL = "protocol"

REQUEST_KINDS = (SWEEP, NETWORK, PROTOCOL)
"""The workload kinds a request can describe (= the runtime-capable CLI commands)."""

SWEEP_ENGINES = ("batched", "loop")

PER_POINT_NOTE = (
    "note: with a runtime executor/store the batched sweep runs one grid "
    "point per task (the per-point batched convention) instead of the "
    "fused whole-grid launch, so sampled trajectories differ from a plain "
    "in-process run at the same seed — statistically equivalent, and "
    "stable across worker counts and cache states"
)


class RequestError(ValueError):
    """A request is malformed or names an impossible configuration."""


@dataclass(frozen=True)
class SimulationRequest:
    """A validated, canonical description of one runnable workload.

    ``spec`` is plain JSON-able data (the payload ``request_from_dict``
    accepts), already normalised through the canonicaliser, so equal
    workloads compare equal and share one :meth:`key`.
    """

    kind: str
    spec: Mapping[str, Any]

    def key(self) -> str:
        """Content address: SHA-256 of the canonical JSON encoding."""
        payload = canonical_json({"kind": self.kind, "spec": dict(self.spec)})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def engine(self) -> str:
        return str(self.spec["engine"])

    def to_dict(self) -> Dict[str, Any]:
        """The JSON payload that round-trips through :func:`request_from_dict`."""
        payload = dict(self.spec)
        payload["kind"] = self.kind
        return payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def _finite_float(name: str, value: Any) -> float:
    """A finite float, or :class:`RequestError`.

    Non-finite parameters are rejected at the request boundary: the content
    address is canonical (RFC 8259) JSON, which has no ``NaN``/``Infinity``
    tokens — and ``json.loads`` would happily accept them from a payload
    (``{"beta": Infinity}``), turning a client typo into an HTTP 500 deep in
    key derivation instead of a 400 here.
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise RequestError(f"'{name}' must be a number, got {value!r}")
    _require(math.isfinite(value), f"'{name}' must be finite, got {value!r}")
    return value


def _float_list(name: str, values: Any) -> List[float]:
    _require(
        isinstance(values, (list, tuple)) and len(values) > 0,
        f"'{name}' must be a non-empty sequence of numbers",
    )
    try:
        values = [float(value) for value in values]
    except (TypeError, ValueError):
        raise RequestError(f"'{name}' must contain only numbers, got {values!r}")
    _require(
        all(math.isfinite(value) for value in values),
        f"'{name}' must contain only finite numbers, got {values!r}",
    )
    return values


def _int_list(name: str, values: Any) -> List[int]:
    _require(
        isinstance(values, (list, tuple)) and len(values) > 0,
        f"'{name}' must be a non-empty sequence of integers",
    )
    try:
        return [int(value) for value in values]
    except (TypeError, ValueError):
        raise RequestError(f"'{name}' must contain only integers, got {values!r}")


def _positive_int(name: str, value: Any) -> int:
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise RequestError(f"'{name}' must be an integer, got {value!r}")
    _require(value > 0, f"'{name}' must be positive, got {value}")
    return value


def _non_negative_int(name: str, value: Any) -> int:
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise RequestError(f"'{name}' must be an integer, got {value!r}")
    _require(value >= 0, f"'{name}' must be non-negative, got {value}")
    return value


def _engine(value: str, allowed: Tuple[str, ...]) -> str:
    _require(
        value in allowed,
        f"unknown engine {value!r}; expected one of {', '.join(allowed)}",
    )
    return value


def _backend_dtype_fields(
    engine: str, backend: Any, dtype: Any
) -> Dict[str, Any]:
    """Validate and canonicalise a request's ``backend``/``dtype`` pair.

    Default selections (``None``, ``"numpy"``, ``"float64"``) normalise to
    *absent* fields, so requests predating these knobs keep their content
    addresses; non-default selections become spec fields — and therefore
    part of the request key and of every per-point parameter dict the
    :class:`~repro.runtime.store.ResultStore` keys on — so a float32 run can
    never hit a float64 cache entry.  Non-default values need the batched
    engine (the per-seed paths always run NumPy float64).
    """
    fields: Dict[str, Any] = {}
    if backend is not None:
        backend = str(backend)
        _require(
            backend in BACKENDS,
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}",
        )
        if backend != "numpy":
            fields["backend"] = backend
    if dtype is not None:
        dtype = str(dtype)
        _require(
            dtype in PRECISIONS,
            f"unknown dtype {dtype!r}; expected one of {', '.join(PRECISIONS)}",
        )
        if dtype != "float64":
            fields["dtype"] = dtype
    if fields and engine != "batched":
        raise RequestError(
            "backend/dtype overrides need the batched engine (the per-seed "
            f"engines always run numpy/float64); got engine={engine!r}"
        )
    return fields


def sweep_request(
    *,
    options: Any,
    populations: Any,
    horizon: int = 300,
    beta: float = 0.6,
    betas: Any = None,
    mus: Any = None,
    replications: int = 3,
    seed: int = 0,
    engine: str = "batched",
    backend: Any = None,
    dtype: Any = None,
) -> SimulationRequest:
    """A ``repro sweep`` workload: the dynamics over a ``N x beta x mu`` grid."""
    engine = _engine(engine, SWEEP_ENGINES)
    spec: Dict[str, Any] = {
        "options": _float_list("options", options),
        "populations": _int_list("populations", populations),
        "horizon": _positive_int("horizon", horizon),
        "beta": _finite_float("beta", beta),
        "replications": _positive_int("replications", replications),
        "seed": _non_negative_int("seed", seed),
        "engine": engine,
    }
    if betas is not None:
        spec["betas"] = _float_list("betas", betas)
    if mus is not None:
        spec["mus"] = _float_list("mus", mus)
    spec.update(_backend_dtype_fields(engine, backend, dtype))
    return SimulationRequest(kind=SWEEP, spec=spec)


def network_request(
    *,
    options: Any,
    topology: str,
    size: int,
    horizon: int = 300,
    beta: float = 0.6,
    mu: Optional[float] = None,
    graph_seed: int = 0,
    replications: int = 20,
    seed: int = 0,
    engine: str = "batched",
    backend: Any = None,
    dtype: Any = None,
) -> SimulationRequest:
    """A ``repro network`` workload: the dynamics on a social topology."""
    engine = _engine(engine, tuple(NETWORK_ENGINES))
    spec: Dict[str, Any] = {
        "options": _float_list("options", options),
        "topology": str(topology),
        "size": _positive_int("size", size),
        "horizon": _positive_int("horizon", horizon),
        "beta": _finite_float("beta", beta),
        "graph_seed": _non_negative_int("graph_seed", graph_seed),
        "replications": _positive_int("replications", replications),
        "seed": _non_negative_int("seed", seed),
        "engine": engine,
    }
    if mu is not None:
        spec["mu"] = _finite_float("mu", mu)
    spec.update(_backend_dtype_fields(engine, backend, dtype))
    return SimulationRequest(kind=NETWORK, spec=spec)


def protocol_request(
    *,
    options: Any,
    nodes: int,
    rounds: int = 300,
    beta: float = 0.6,
    mu: Optional[float] = None,
    loss: float = 0.0,
    delay: float = 0.0,
    crash: float = 0.0,
    mass_crash_round: Optional[int] = None,
    mass_crash_fraction: float = 0.0,
    replications: int = 20,
    seed: int = 0,
    engine: str = "batched",
    backend: Any = None,
    dtype: Any = None,
) -> SimulationRequest:
    """A ``repro protocol`` workload: the distributed protocol under failures.

    Mirrors the CLI's derivations: ``mass_crash_round`` defaults to
    ``rounds // 2`` when a positive ``mass_crash_fraction`` is given, and
    ``delay > 0`` requires the loop engine (the only one that models
    per-message delay).
    """
    engine = _engine(engine, tuple(PROTOCOL_ENGINES))
    rounds = _positive_int("rounds", rounds)
    delay = _finite_float("delay", delay)
    if delay > 0 and engine != "loop":
        raise RequestError(
            "only the loop engine models per-message delay; "
            "use engine='loop' or drop the delay"
        )
    mass_crash_fraction = _finite_float("mass_crash_fraction", mass_crash_fraction)
    if mass_crash_round is None and mass_crash_fraction > 0:
        mass_crash_round = rounds // 2
    spec: Dict[str, Any] = {
        "options": _float_list("options", options),
        "nodes": _positive_int("nodes", nodes),
        "rounds": rounds,
        "beta": _finite_float("beta", beta),
        "loss": _finite_float("loss", loss),
        "delay": delay,
        "crash": _finite_float("crash", crash),
        "mass_crash_fraction": mass_crash_fraction,
        "replications": _positive_int("replications", replications),
        "seed": _non_negative_int("seed", seed),
        "engine": engine,
    }
    if mass_crash_round is not None:
        spec["mass_crash_round"] = _non_negative_int(
            "mass_crash_round", mass_crash_round
        )
    if mu is not None:
        spec["mu"] = _finite_float("mu", mu)
    spec.update(_backend_dtype_fields(engine, backend, dtype))
    return SimulationRequest(kind=PROTOCOL, spec=spec)


_BUILDERS: Dict[str, Callable[..., SimulationRequest]] = {
    SWEEP: sweep_request,
    NETWORK: network_request,
    PROTOCOL: protocol_request,
}

_ALLOWED_FIELDS: Dict[str, Tuple[str, ...]] = {
    SWEEP: (
        "options",
        "populations",
        "horizon",
        "beta",
        "betas",
        "mus",
        "replications",
        "seed",
        "engine",
        "backend",
        "dtype",
    ),
    NETWORK: (
        "options",
        "topology",
        "size",
        "horizon",
        "beta",
        "mu",
        "graph_seed",
        "replications",
        "seed",
        "engine",
        "backend",
        "dtype",
    ),
    PROTOCOL: (
        "options",
        "nodes",
        "rounds",
        "beta",
        "mu",
        "loss",
        "delay",
        "crash",
        "mass_crash_round",
        "mass_crash_fraction",
        "replications",
        "seed",
        "engine",
        "backend",
        "dtype",
    ),
}


def request_from_dict(payload: Mapping[str, Any]) -> SimulationRequest:
    """Build a validated request from a JSON payload (the daemon's input).

    The payload is ``{"kind": <sweep|network|protocol>, **fields}`` with the
    fields of the matching constructor.  Unknown fields are rejected — a
    silently-dropped typo (``"replciations": 100``) would otherwise run a
    different experiment than the one submitted.
    """
    _require(isinstance(payload, Mapping), "request payload must be a JSON object")
    fields = dict(payload)
    kind = fields.pop("kind", None)
    _require(
        kind in REQUEST_KINDS,
        f"unknown request kind {kind!r}; expected one of {', '.join(REQUEST_KINDS)}",
    )
    allowed = _ALLOWED_FIELDS[kind]
    unknown = sorted(name for name in fields if name not in allowed)
    _require(
        not unknown,
        f"unknown {kind} request fields {unknown}; allowed: {', '.join(allowed)}",
    )
    try:
        return _BUILDERS[kind](**fields)
    except TypeError as error:
        # Missing required fields surface as TypeError from the builder
        # signature; normalise to the validation error the daemon maps to 400.
        raise RequestError(f"invalid {kind} request: {error}") from None


@dataclass(frozen=True)
class PreparedRequest:
    """A request resolved to the harness objects that execute it.

    ``config`` is set for the single-config kinds (network/protocol);
    ``grid``/``base_parameters`` are set for sweeps.  Both front ends use
    this single derivation, which is what makes their rows bit-identical.
    """

    request: SimulationRequest
    replication: Callable
    replications: int
    seed: int
    grid: Optional[ParameterGrid] = None
    base_parameters: Optional[Dict[str, Any]] = None
    config: Optional[ExperimentConfig] = None

    @property
    def name(self) -> str:
        return f"{self.request.kind}-{self.request.engine}"


def prepare_request(request: SimulationRequest) -> PreparedRequest:
    """Resolve ``request`` into grid/config + replication function."""
    spec = request.spec
    if request.kind == SWEEP:
        axes: Dict[str, Any] = {"N": list(spec["populations"])}
        if spec.get("betas"):
            axes["beta"] = list(spec["betas"])
        if spec.get("mus"):
            axes["mu"] = list(spec["mus"])
        base_parameters: Dict[str, Any] = {
            "qualities": tuple(spec["options"]),
            "T": spec["horizon"],
        }
        if not spec.get("betas"):
            base_parameters["beta"] = spec["beta"]
        for option_key in ("backend", "dtype"):
            if option_key in spec:
                base_parameters[option_key] = spec[option_key]
        replication = (
            dynamics_grid_replication
            if request.engine == "batched"
            else dynamics_point_replication
        )
        return PreparedRequest(
            request=request,
            replication=replication,
            replications=spec["replications"],
            seed=spec["seed"],
            grid=ParameterGrid(axes),
            base_parameters=base_parameters,
        )
    if request.kind == NETWORK:
        parameters: Dict[str, Any] = {
            "qualities": tuple(spec["options"]),
            "topology": spec["topology"],
            "N": spec["size"],
            "T": spec["horizon"],
            "beta": spec["beta"],
            "graph_seed": spec["graph_seed"],
        }
        if "mu" in spec:
            parameters["mu"] = spec["mu"]
        for option_key in ("backend", "dtype"):
            if option_key in spec:
                parameters[option_key] = spec[option_key]
        config = ExperimentConfig(
            name=f"network-{request.engine}",
            parameters=parameters,
            replications=spec["replications"],
            seed=spec["seed"],
        )
        return PreparedRequest(
            request=request,
            replication=NETWORK_REPLICATIONS[request.engine],
            replications=spec["replications"],
            seed=spec["seed"],
            config=config,
        )
    if request.kind == PROTOCOL:
        parameters = {
            "qualities": tuple(spec["options"]),
            "N": spec["nodes"],
            "T": spec["rounds"],
            "beta": spec["beta"],
            "loss": spec["loss"],
            "delay": spec["delay"],
            "crash": spec["crash"],
            "mass_crash_fraction": spec["mass_crash_fraction"],
        }
        if "mass_crash_round" in spec:
            parameters["mass_crash_round"] = spec["mass_crash_round"]
        if "mu" in spec:
            parameters["mu"] = spec["mu"]
        for option_key in ("backend", "dtype"):
            if option_key in spec:
                parameters[option_key] = spec[option_key]
        config = ExperimentConfig(
            name=f"protocol-{request.engine}",
            parameters=parameters,
            replications=spec["replications"],
            seed=spec["seed"],
        )
        return PreparedRequest(
            request=request,
            replication=PROTOCOL_REPLICATIONS[request.engine],
            replications=spec["replications"],
            seed=spec["seed"],
            config=config,
        )
    raise RequestError(f"unknown request kind {request.kind!r}")


@dataclass
class RequestResult:
    """Everything a front end needs to present one executed request."""

    request: SimulationRequest
    table: ResultTable
    description: str
    notes: Tuple[str, ...] = field(default=())

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """The result rows — the bit-identical CLI/API contract."""
        return [dict(row) for row in self.table.rows]


def _summary_table(result) -> ResultTable:
    """Metric-summary table of a ReplicatedResult (the network/protocol form)."""
    table = ResultTable()
    for name in result.metric_names():
        row: Dict[str, Any] = {"metric": name}
        row.update(result.summarize(name).as_dict())
        table.add_row(row)
    return table


def execute_request(
    request: SimulationRequest,
    *,
    options: Optional[ExecutionOptions] = None,
    executor: Any = None,
    store: Any = None,
    prepared: Optional[PreparedRequest] = None,
) -> RequestResult:
    """Execute ``request`` and return its result table.

    ``options`` — an :class:`~repro.runtime.options.ExecutionOptions` —
    routes execution through the parallel runtime exactly as the CLI's
    ``--workers``/``--store`` flags do; the legacy ``executor=``/``store=``
    keyword arguments still work but emit ``DeprecationWarning``.  Pass a
    ``prepared`` request to reuse a prior :func:`prepare_request` derivation
    (e.g. when a front end already resolved it for display purposes).
    """
    options = resolve_options(
        options, executor=executor, store=store, owner="execute_request"
    )
    prepared = prepared if prepared is not None else prepare_request(request)
    notes: Tuple[str, ...] = ()
    if prepared.grid is not None:
        if request.engine == "batched" and options is not None and options.active:
            notes = (PER_POINT_NOTE,)
        _, table = run_sweep(
            prepared.name,
            prepared.grid,
            prepared.replication,
            replications=prepared.replications,
            seed=prepared.seed,
            base_parameters=prepared.base_parameters,
            options=options,
        )
        description = (
            f"sweep engine={request.engine}: {len(prepared.grid)} grid points "
            f"x {prepared.replications} replications"
        )
        return RequestResult(
            request=request, table=table, description=description, notes=notes
        )
    result = run_replications(
        prepared.config, prepared.replication, options=options
    )
    return RequestResult(
        request=request,
        table=_summary_table(result),
        description=prepared.config.describe(),
        notes=notes,
    )
