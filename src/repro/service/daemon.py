"""Simulation-as-a-service: a stdlib HTTP daemon over the parallel runtime.

Architecture (the PVC-style client/daemon split): a thin
:class:`~repro.service.client.ServiceClient` (or any HTTP caller) talks JSON
to :class:`SimulationDaemon`, which owns

* one shared, thread-safe :class:`~repro.runtime.store.ResultStore` — every
  computed task lands there and repeat queries are served by content
  address (cache-first serving: a fully warm job costs ~zero compute);
* a bounded :class:`~repro.service.jobs.JobQueue` whose worker threads
  execute jobs through the same
  :func:`~repro.service.requests.execute_request` path the CLI uses, so an
  HTTP job and the equivalent CLI command return bit-identical rows; and
* an optional per-job :class:`~repro.runtime.executors.ParallelExecutor`
  when the daemon is started with ``process_workers > 1``.

Endpoints (API v1 — every route lives under ``/v1/``)::

    POST /v1/jobs              submit {"kind": ..., ...}; 202 + job id
                               (200 when attached to an identical in-flight
                               job; 429 when the queue is full; 400 on a
                               malformed request)
    POST /v1/campaigns         submit a campaign spec ({"name", "nodes"});
                               same job lifecycle, rows are per-node results
    GET  /v1/jobs/<id>         job status (state, timings, cache hits/misses)
    GET  /v1/jobs/<id>/result  result rows once done (202 while pending,
                               500 envelope when the job failed)
    GET  /v1/jobs/<id>/trace   the job's buffered span records (trace id,
                               span start/end events, shard timings)
    GET  /v1/healthz           liveness + version
    GET  /v1/stats             store tier counters (hot/cold hits, spills,
                               evictions, compactions, residency) + queue
                               depth + job counts + queue-wait percentiles
    GET  /v1/metrics           Prometheus text exposition: the same store
                               counters as /stats (one snapshot source, so
                               they never disagree), the queue-wait
                               histogram, and runtime shard/broker metrics

The pre-versioning unversioned paths (``/jobs``, ``/healthz``, ...) remain
as deprecated aliases: they answer with byte-identical bodies plus a
``Deprecation: true`` header.  Unknown version prefixes (``/v2/...``) are
404s.  Every error response uses one envelope::

    {"error": {"code": "<machine-readable>", "message": "<human-readable>"}}

Run it via ``repro serve`` or embed it with :func:`start_daemon` (tests and
examples start it on an ephemeral port in a background thread).
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    TeeSink,
    Tracer,
    trace_id_for_key,
)
from repro.runtime.executors import ParallelExecutor, SerialExecutor
from repro.runtime.options import ExecutionOptions
from repro.runtime.store import ResultStore
from repro.service.jobs import DONE, ERROR, JobQueue, QueueFull
from repro.service.requests import (
    RequestError,
    execute_request,
    request_from_dict,
)

MAX_REQUEST_BYTES = 1 << 20  # 1 MiB of JSON is far beyond any real request

API_PREFIX = "/v1"
_VERSION_SEGMENT = re.compile(r"v\d+")


class SimulationService:
    """The daemon's engine room: shared store + job queue + executor policy.

    Usable without HTTP (the handler, the CLI and in-process tests all drive
    this object); the HTTP layer only translates it to status codes.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        *,
        job_workers: int = 2,
        queue_capacity: int = 16,
        process_workers: int = 1,
        trace_out: Optional[str] = None,
    ) -> None:
        if process_workers < 1:
            raise ValueError(f"process_workers must be >= 1, got {process_workers}")
        self.store = store
        self.process_workers = process_workers
        # Per-service registry, so parallel daemons (tests) never share
        # series.  The store counters come in through a collector that reads
        # the same counters() snapshot /stats serves, so /v1/metrics and
        # /v1/stats can never structurally disagree.
        self.registry = MetricsRegistry()
        if store is not None:
            self.registry.register_collector(self._store_samples)
        # Every job's spans land in a bounded in-memory sink keyed by trace
        # id (GET /v1/jobs/<id>/trace); trace_out additionally appends the
        # records to a JSONL file.
        self.trace_sink = MemorySink()
        sink = (
            TeeSink(self.trace_sink, JsonlSink(trace_out))
            if trace_out
            else self.trace_sink
        )
        self.tracer = Tracer(sink)
        self.queue = JobQueue(
            self._execute,
            workers=job_workers,
            capacity=queue_capacity,
            registry=self.registry,
        )

    def _store_samples(self):
        """Collector bridging the store's counters into ``/v1/metrics``."""
        counters = self.store.counters()
        for name, value in counters.as_dict().items():
            yield (
                f"repro_store_{name}_total",
                "counter",
                f"Result store {name} (matches the /v1/stats store field).",
                {},
                value,
            )
        for name, value in (
            ("rows", len(self.store)),
            ("hot_entries", self.store.hot_entries),
            ("hot_bytes", self.store.hot_bytes),
            ("segments", self.store.segment_count()),
        ):
            yield (
                f"repro_store_{name}",
                "gauge",
                f"Result store {name} residency.",
                {},
                value,
            )

    def _execute(self, request: Any) -> Tuple[List[Dict[str, Any]], str, int, int]:
        executor = (
            ParallelExecutor(self.process_workers) if self.process_workers > 1 else None
        )
        before = self.store.counters() if self.store is not None else None
        # The job span is the trace root; its id derives from the request's
        # content address, which is exactly the trace_id a job snapshot
        # reports — GET /v1/jobs/<id>/trace joins the two.
        with self.tracer.span(
            "job", request.key(), attributes={"kind": getattr(request, "kind", None)}
        ):
            if getattr(request, "kind", None) == "campaign":
                # Imported lazily: repro.campaign builds on this package.
                from repro.campaign.scheduler import run_campaign

                # Campaigns schedule their own nodes; the daemon's executor
                # policy becomes the campaign backend (serial when unset, so
                # results match any other backend bit for bit).
                backend = executor if executor is not None else SerialExecutor()
                campaign_result = run_campaign(
                    request, backend=backend, store=self.store, tracer=self.tracer
                )
                rows: List[Dict[str, Any]] = [
                    campaign_result[node_id].to_dict()
                    for node_id in campaign_result.order
                ]
                description = (
                    f"campaign {request.name}: {len(request)} node(s), "
                    f"{len(request.simulate_nodes())} simulate"
                )
            else:
                result = execute_request(
                    request,
                    options=ExecutionOptions(
                        executor=executor, store=self.store, tracer=self.tracer
                    ),
                )
                rows, description = result.rows, result.description
        # Counter deltas are attributed per job; with several jobs in flight
        # on one store they are approximate, exact when jobs run one at a
        # time (the /stats totals are always exact).
        if self.store is not None:
            after = self.store.counters()
            hits, misses = after.hits - before.hits, after.misses - before.misses
        else:
            hits = misses = 0
        return (rows, description, hits, misses)

    def submit(self, payload: Dict[str, Any]):
        """Validate and enqueue a request payload; returns ``(job, attached)``."""
        request = request_from_dict(payload)
        return self.queue.submit(request)

    def submit_campaign(self, payload: Dict[str, Any]):
        """Validate and enqueue a campaign spec; returns ``(job, attached)``.

        Campaign jobs ride the same :class:`~repro.service.jobs.JobQueue` as
        simulation jobs — same states, back-pressure and in-flight dedup
        (by the campaign's content address).
        """
        # Imported lazily: repro.campaign builds on this package.
        from repro.campaign.graph import campaign_from_spec

        campaign = campaign_from_spec(payload)
        return self.queue.submit(campaign)

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: store counters plus queue counters."""
        store_stats: Dict[str, Any] = {"attached": self.store is not None}
        if self.store is not None:
            # The full tier breakdown: hits/misses as before, plus hot/cold
            # hit attribution, spill/eviction/compaction activity and the
            # current residency of each tier.
            store_stats.update(self.store.counters().as_dict())
            store_stats.update(
                {
                    "path": str(self.store.path),
                    "rows": len(self.store),
                    "hot_entries": self.store.hot_entries,
                    "hot_bytes": self.store.hot_bytes,
                    "segments": self.store.segment_count(),
                }
            )
        return {
            "version": __version__,
            "store": store_stats,
            "queue": self.queue.stats(),
        }

    def render_metrics(self) -> str:
        """The ``/v1/metrics`` body: service registry plus runtime metrics.

        The service registry holds the queue histogram and the store
        collector; the process-wide registry holds the executor/broker
        metrics (shards in flight, dispatch overhead, requeues).  Their
        metric names are disjoint, so the concatenation is valid Prometheus
        text.
        """
        service_text = self.registry.render_prometheus()
        runtime_text = get_registry().render_prometheus()
        return service_text + runtime_text

    def job_trace(self, job: Any) -> Dict[str, Any]:
        """The ``/v1/jobs/<id>/trace`` payload: buffered span records."""
        trace_id = trace_id_for_key(job.key)
        return {
            "job_id": job.id,
            "trace_id": trace_id,
            "truncated": self.trace_sink.truncated(trace_id),
            "records": self.trace_sink.records(trace_id),
        }

    def close(self) -> None:
        """Stop the workers; the store is owned by the caller and stays open."""
        self.queue.close()
        self.tracer.close()


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the owning server's SimulationService."""

    server_version = f"repro-serve/{__version__}"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; keep the daemon
    # quiet unless the server was built with verbose logging.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def service(self) -> SimulationService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(
        self, status: int, payload: Dict[str, Any], *, legacy: bool = False
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if legacy:
            # Pre-versioning alias path: identical body, plus a deprecation
            # signal so callers migrate to /v1.
            self.send_header("Deprecation", "true")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, *, legacy: bool = False) -> None:
        """Plain-text response (the Prometheus exposition endpoint)."""
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(encoded)))
        if legacy:
            self.send_header("Deprecation", "true")
        self.end_headers()
        self.wfile.write(encoded)

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        *,
        legacy: bool = False,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        """One error envelope for every failure: ``{"error": {code, message}}``."""
        payload: Dict[str, Any] = {"error": {"code": code, "message": message}}
        if extra:
            payload.update(extra)
        self._send_json(status, payload, legacy=legacy)

    def _route(self) -> Optional[Tuple[List[str], bool]]:
        """Split the path into segments; returns ``(segments, legacy)``.

        ``/v1/...`` is the canonical surface; bare paths are the deprecated
        legacy aliases.  Any *other* version prefix (``/v2/...``) is answered
        with a 404 envelope here and ``None`` is returned.
        """
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts and parts[0] == API_PREFIX.lstrip("/"):
            return parts[1:], False
        if parts and _VERSION_SEGMENT.fullmatch(parts[0]):
            self._send_error(
                404,
                "unknown_version",
                f"unknown API version {parts[0]!r}; this daemon serves "
                f"{API_PREFIX}",
            )
            return None
        return parts, True

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("request body must be a JSON object")
        if length > MAX_REQUEST_BYTES:
            raise RequestError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit"
            )
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        route = self._route()
        if route is None:
            return
        parts, legacy = route
        if parts == ["jobs"]:
            submit = self.service.submit
            invalid_code = "invalid_request"
        elif parts == ["campaigns"]:
            submit = self.service.submit_campaign
            invalid_code = "invalid_campaign"
        else:
            self._send_error(
                404, "not_found", f"unknown path {self.path}", legacy=legacy
            )
            return
        try:
            job, attached = submit(self._read_json())
        except ValueError as error:
            # RequestError and CampaignError are both ValueErrors; the
            # latter is only importable lazily (repro.campaign builds on
            # this package), so catch the shared base.
            self._send_error(400, invalid_code, str(error), legacy=legacy)
            return
        except QueueFull as error:
            self._send_error(429, "queue_full", str(error), legacy=legacy)
            return
        self._send_json(
            200 if attached else 202,
            {
                "job_id": job.id,
                "key": job.key,
                "status": job.status,
                "attached": attached,
            },
            legacy=legacy,
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        route = self._route()
        if route is None:
            return
        parts, legacy = route
        if parts == ["healthz"]:
            self._send_json(
                200, {"status": "ok", "version": __version__}, legacy=legacy
            )
            return
        if parts == ["stats"]:
            self._send_json(200, self.service.stats(), legacy=legacy)
            return
        if parts == ["metrics"]:
            self._send_text(200, self.service.render_metrics(), legacy=legacy)
            return
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.service.queue.get(parts[1])
            if job is None:
                self._send_error(
                    404, "unknown_job", f"unknown job {parts[1]!r}", legacy=legacy
                )
                return
            if len(parts) == 2:
                self._send_json(200, job.snapshot(), legacy=legacy)
                return
            if len(parts) == 3 and parts[2] == "trace":
                self._send_json(200, self.service.job_trace(job), legacy=legacy)
                return
            if len(parts) == 3 and parts[2] == "result":
                if job.status == DONE:
                    payload = job.snapshot()
                    payload["description"] = job.description
                    payload["rows"] = job.rows
                    self._send_json(200, payload, legacy=legacy)
                elif job.status == ERROR:
                    self._send_error(
                        500,
                        "job_failed",
                        job.error or "job failed",
                        legacy=legacy,
                        extra={"job": job.snapshot()},
                    )
                else:
                    self._send_json(202, job.snapshot(), legacy=legacy)
                return
        self._send_error(404, "not_found", f"unknown path {self.path}", legacy=legacy)


class SimulationDaemon(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to a :class:`SimulationService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: SimulationService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


@dataclass
class DaemonHandle:
    """A daemon running in a background thread (the embedding/test harness)."""

    server: SimulationDaemon
    service: SimulationService
    thread: threading.Thread

    @property
    def url(self) -> str:
        return self.server.url

    def close(self) -> None:
        """Shut down HTTP, the job workers, and the store (if daemon-owned)."""
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        self.thread.join(timeout=10.0)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def start_daemon(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    store: Optional[ResultStore] = None,
    job_workers: int = 2,
    queue_capacity: int = 16,
    process_workers: int = 1,
    verbose: bool = False,
    trace_out: Optional[str] = None,
) -> DaemonHandle:
    """Start a daemon in a background thread; ``port=0`` picks a free port."""
    service = SimulationService(
        store,
        job_workers=job_workers,
        queue_capacity=queue_capacity,
        process_workers=process_workers,
        trace_out=trace_out,
    )
    server = SimulationDaemon((host, port), service, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return DaemonHandle(server=server, service=service, thread=thread)
