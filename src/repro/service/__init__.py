"""Simulation-as-a-service: request layer, job queue, HTTP daemon, client.

The service package turns the one-shot CLI system into a long-running,
cache-first API daemon on top of the parallel runtime (:mod:`repro.runtime`):

* :mod:`repro.service.requests` — the **shared request layer**: validated
  :class:`SimulationRequest` objects and one :func:`execute_request` path
  used by both the CLI and the daemon, so HTTP jobs and CLI commands produce
  bit-identical rows;
* :mod:`repro.service.jobs` — :class:`JobQueue`: bounded queue + worker
  threads + in-flight dedup by content address (back-pressure via
  :class:`QueueFull` -> HTTP 429);
* :mod:`repro.service.daemon` — :class:`SimulationDaemon`: the stdlib
  ``ThreadingHTTPServer`` front end serving API v1 (``POST /v1/jobs``,
  ``POST /v1/campaigns``, ``GET /v1/jobs/<id>``, ``GET /v1/jobs/<id>/result``,
  ``GET /v1/healthz``, ``GET /v1/stats``; unversioned paths remain as
  deprecated aliases), embeddable via :func:`start_daemon`;
* :mod:`repro.service.client` — :class:`ServiceClient`: a thin
  ``urllib``-based client (submit/status/result/wait/run).

Entry point: ``repro serve --port 8080 --store results.sqlite``; see the
README's "Serving" section.
"""

from repro.service.client import JobFailed, ServiceClient, ServiceError
from repro.service.daemon import (
    DaemonHandle,
    SimulationDaemon,
    SimulationService,
    start_daemon,
)
from repro.service.jobs import Job, JobQueue, QueueFull
from repro.service.requests import (
    RequestError,
    RequestResult,
    SimulationRequest,
    execute_request,
    network_request,
    prepare_request,
    protocol_request,
    request_from_dict,
    sweep_request,
)

__all__ = [
    "DaemonHandle",
    "Job",
    "JobFailed",
    "JobQueue",
    "QueueFull",
    "RequestError",
    "RequestResult",
    "ServiceClient",
    "ServiceError",
    "SimulationDaemon",
    "SimulationRequest",
    "SimulationService",
    "execute_request",
    "network_request",
    "prepare_request",
    "protocol_request",
    "request_from_dict",
    "start_daemon",
    "sweep_request",
]
