"""Thin stdlib HTTP client for the simulation daemon.

Mirrors the daemon's endpoint surface one method per endpoint, plus a
blocking :meth:`ServiceClient.run` convenience (submit, poll to completion,
fetch rows) used by tests, examples and the CI smoke job.  Only
:mod:`urllib.request` is used, so the client imports anywhere the library
does.

The client speaks **API v1**: every request it makes is prefixed with
``/v1``, and it decodes the v1 error envelope ``{"error": {"code": ...,
"message": ...}}`` (falling back gracefully on pre-v1 daemons whose errors
were plain strings).

Error contract: non-2xx responses raise :class:`ServiceError` carrying the
HTTP status and the decoded JSON payload — ``status == 429`` is the daemon's
back-pressure signal (full queue; retry later), ``400`` a malformed request,
``404`` an unknown job or path.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Union
from urllib import error as urllib_error
from urllib import request as urllib_request

from repro.service.requests import SimulationRequest

API_PREFIX = "/v1"


def _error_message(payload: Any) -> Optional[str]:
    """The human-readable message of an error payload (envelope or legacy)."""
    if not isinstance(payload, dict):
        return None
    envelope = payload.get("error")
    if isinstance(envelope, dict):
        message = envelope.get("message")
        return str(message) if message is not None else None
    if isinstance(envelope, str):
        return envelope  # pre-v1 daemons sent a bare string
    return None


class ServiceError(RuntimeError):
    """A non-2xx daemon response (or no response at all)."""

    def __init__(
        self, message: str, *, status: Optional[int] = None, payload: Any = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


class JobFailed(ServiceError):
    """The polled job finished in the ``error`` state."""


Payload = Union[SimulationRequest, Dict[str, Any]]


class ServiceClient:
    """HTTP client bound to one daemon base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(
        self, path: str, *, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib_request.Request(
            f"{self.base_url}{API_PREFIX}{path}",
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib_request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib_error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = None
            message = _error_message(payload) or (
                f"daemon returned HTTP {error.code} for {path}"
            )
            raise ServiceError(
                message, status=error.code, payload=payload
            ) from None
        except urllib_error.URLError as error:
            raise ServiceError(
                f"cannot reach daemon at {self.base_url}: {error.reason}"
            ) from None

    # -- endpoint methods ----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._call("/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``."""
        return self._call("/stats")

    def metrics(self) -> str:
        """``GET /v1/metrics``: the Prometheus text exposition, verbatim."""
        request = urllib_request.Request(
            f"{self.base_url}{API_PREFIX}/metrics", method="GET"
        )
        try:
            with urllib_request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib_error.HTTPError as error:
            raise ServiceError(
                f"daemon returned HTTP {error.code} for /metrics",
                status=error.code,
            ) from None
        except urllib_error.URLError as error:
            raise ServiceError(
                f"cannot reach daemon at {self.base_url}: {error.reason}"
            ) from None

    def trace(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/trace``: the job's buffered span records."""
        return self._call(f"/jobs/{job_id}/trace")

    def submit(self, request: Payload) -> Dict[str, Any]:
        """``POST /v1/jobs``; accepts a request object or a raw payload dict.

        Returns ``{"job_id", "key", "status", "attached"}``; raises
        :class:`ServiceError` with ``status=429`` when the queue is full.
        """
        payload = (
            request.to_dict() if isinstance(request, SimulationRequest) else request
        )
        return self._call("/jobs", body=payload)

    def submit_campaign(self, spec: Any) -> Dict[str, Any]:
        """``POST /v1/campaigns``; accepts a campaign spec or ``Campaign``.

        Campaign jobs share the simulation-job lifecycle: poll them with
        :meth:`status`/:meth:`wait`; the result rows are the per-node
        results in execution order.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        return self._call("/campaigns", body=payload)

    def status(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>``."""
        return self._call(f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/<id>/result``.

        Raises :class:`ServiceError` with ``status=202`` while the job is
        still queued/running and ``status=500`` when it failed.
        """
        payload = self._call(f"/jobs/{job_id}/result")
        if "rows" not in payload:
            # the daemon answers 202 + a status snapshot for a pending job,
            # which urllib treats as success — surface it as an error here
            raise ServiceError(
                f"job {job_id} is still {payload.get('status')}",
                status=202,
                payload=payload,
            )
        return payload

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 1.0,
    ) -> Dict[str, Any]:
        """Poll ``/v1/jobs/<id>`` until the job finishes; returns its result.

        Polling backs off exponentially from ``poll_interval`` to
        ``max_poll_interval`` (doubling after each miss), so a quick job is
        noticed within ~50 ms while an hour-long campaign costs the daemon
        ~one status request per second instead of twenty.  Raises
        :class:`JobFailed` if the job errored and :class:`ServiceError` on
        timeout.
        """
        deadline = time.monotonic() + timeout
        interval = max(poll_interval, 0.0)
        while True:
            status = self.status(job_id)
            if status["status"] == "done":
                return self.result(job_id)
            if status["status"] == "error":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}",
                    status=500,
                    payload=status,
                )
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['status']} after {timeout}s"
                )
            time.sleep(min(interval, deadline - now))
            interval = min(max(interval * 2, 0.001), max_poll_interval)

    def run(self, request: Payload, *, timeout: float = 120.0) -> List[Dict[str, Any]]:
        """Submit ``request``, wait for completion, and return its rows."""
        submitted = self.submit(request)
        return self.wait(submitted["job_id"], timeout=timeout)["rows"]
