"""Social network topologies and their statistics."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


class SocialNetwork:
    """An undirected social graph over agents ``0 .. N-1``.

    Wraps a :class:`networkx.Graph` and precomputes the adjacency structure
    the network-restricted dynamics queries every step: per-node neighbour
    arrays for the per-agent loop engine, and a CSR (compressed sparse row)
    view — ``csr_indptr`` / ``csr_indices`` plus cached degrees — for the
    vectorised engines, which consume the whole adjacency in single NumPy
    passes instead of per-node lookups.  Isolated vertices are allowed (such
    an individual can only learn through uniform exploration).

    Parameters
    ----------
    graph:
        An undirected graph whose nodes are exactly ``0 .. N-1``.
    name:
        Optional label used in benchmark tables.
    """

    def __init__(self, graph: nx.Graph, name: Optional[str] = None) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        expected_nodes = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected_nodes:
            raise ValueError(
                "graph nodes must be exactly 0..N-1; relabel with "
                "networkx.convert_node_labels_to_integers first"
            )
        self._graph = graph
        self._name = name or "custom"
        self._neighbors: Dict[int, np.ndarray] = {
            node: np.fromiter(graph.neighbors(node), dtype=np.int64)
            for node in range(graph.number_of_nodes())
        }
        self._csr: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    # ------------------------------------------------------------- CSR view
    def _build_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._csr is None:
            size = self.size
            degrees = np.fromiter(
                (self._neighbors[node].size for node in range(size)),
                dtype=np.int64,
                count=size,
            )
            indptr = np.zeros(size + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            if indptr[-1]:
                indices = np.concatenate(
                    [self._neighbors[node] for node in range(size)]
                ).astype(np.int64, copy=False)
            else:
                indices = np.zeros(0, dtype=np.int64)
            edge_rows = np.repeat(np.arange(size, dtype=np.int64), degrees)
            for array in (degrees, indptr, indices, edge_rows):
                array.setflags(write=False)
            self._csr = (indptr, indices, degrees, edge_rows)
        return self._csr

    @property
    def csr_indptr(self) -> np.ndarray:
        """CSR row pointers, shape ``(N + 1,)``: row ``i`` owns ``indices[indptr[i]:indptr[i+1]]``."""
        return self._build_csr()[0]

    @property
    def csr_indices(self) -> np.ndarray:
        """CSR column indices, shape ``(2E,)`` — each undirected edge appears in both rows."""
        return self._build_csr()[1]

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degrees, shape ``(N,)`` (cached)."""
        return self._build_csr()[2]

    @property
    def csr_edge_rows(self) -> np.ndarray:
        """Row index of every CSR slot, shape ``(2E,)`` — ``repeat(arange(N), degrees)``.

        Precomputed once so the vectorised engines' per-step sparse matvec is
        a pure gather + bincount with no per-step index construction.
        """
        return self._build_csr()[3]

    # ------------------------------------------------------------ properties
    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph."""
        return self._graph

    @property
    def name(self) -> str:
        """Topology label."""
        return self._name

    @property
    def size(self) -> int:
        """Number of individuals ``N``."""
        return self._graph.number_of_nodes()

    def neighbors(self, node: int) -> np.ndarray:
        """Array of the node's neighbours (possibly empty)."""
        if node not in self._neighbors:
            raise KeyError(f"node {node} not in network of size {self.size}")
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self._neighbors[node].size)

    # -------------------------------------------------------------- metrics
    def average_degree(self) -> float:
        """Mean degree over all nodes."""
        return float(self.degrees.mean())

    def is_connected(self) -> bool:
        """Whether the graph is connected (single node counts as connected)."""
        return nx.is_connected(self._graph) if self.size > 1 else True

    def diameter(self) -> Optional[int]:
        """Graph diameter, or ``None`` if the graph is disconnected."""
        if not self.is_connected():
            return None
        if self.size == 1:
            return 0
        return int(nx.diameter(self._graph))

    def average_clustering(self) -> float:
        """Average clustering coefficient."""
        return float(nx.average_clustering(self._graph))

    def spectral_gap(self) -> float:
        """1 minus the second-largest eigenvalue modulus of the lazy random walk.

        Larger spectral gap means faster mixing of information through the
        network; experiment E9 reports regret against this quantity.
        """
        if self.size == 1:
            return 1.0
        adjacency = nx.to_numpy_array(self._graph)
        degrees = adjacency.sum(axis=1)
        degrees[degrees == 0] = 1.0
        walk = adjacency / degrees[:, None]
        lazy = 0.5 * (np.eye(self.size) + walk)
        eigenvalues = np.sort(np.abs(np.linalg.eigvals(lazy)))[::-1]
        return float(1.0 - eigenvalues[1].real)

    def metrics(self) -> Dict[str, object]:
        """All topology statistics as a dict (used by experiment reports)."""
        return {
            "name": self._name,
            "size": self.size,
            "average_degree": self.average_degree(),
            "connected": self.is_connected(),
            "diameter": self.diameter(),
            "clustering": self.average_clustering(),
            "spectral_gap": self.spectral_gap(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SocialNetwork({self._name}, N={self.size})"

    # -------------------------------------------------------- constructors
    @classmethod
    def complete(cls, size: int) -> "SocialNetwork":
        """Complete graph: everyone can observe everyone (the paper's base model)."""
        size = check_positive_int(size, "size")
        return cls(nx.complete_graph(size), name="complete")

    @classmethod
    def ring(cls, size: int, neighbors_each_side: int = 1) -> "SocialNetwork":
        """Ring lattice where each node links to ``neighbors_each_side`` on each side."""
        size = check_positive_int(size, "size")
        k = check_positive_int(neighbors_each_side, "neighbors_each_side")
        graph = nx.Graph()
        graph.add_nodes_from(range(size))
        for node in range(size):
            for offset in range(1, k + 1):
                graph.add_edge(node, (node + offset) % size)
        return cls(graph, name=f"ring(k={k})")

    @classmethod
    def grid(cls, rows: int, cols: int) -> "SocialNetwork":
        """2-D grid with 4-neighbour connectivity."""
        rows = check_positive_int(rows, "rows")
        cols = check_positive_int(cols, "cols")
        grid = nx.grid_2d_graph(rows, cols)
        graph = nx.convert_node_labels_to_integers(grid, ordering="sorted")
        return cls(graph, name=f"grid({rows}x{cols})")

    @classmethod
    def star(cls, size: int) -> "SocialNetwork":
        """Star graph: node 0 is the hub."""
        size = check_positive_int(size, "size")
        if size == 1:
            return cls(nx.empty_graph(1), name="star")
        return cls(nx.star_graph(size - 1), name="star")

    @classmethod
    def erdos_renyi(
        cls, size: int, edge_probability: float, rng: RngLike = None
    ) -> "SocialNetwork":
        """Erdős–Rényi random graph ``G(n, p)``."""
        size = check_positive_int(size, "size")
        edge_probability = check_in_range(
            edge_probability, "edge_probability", 0.0, 1.0
        )
        seed = int(ensure_rng(rng).integers(2**31 - 1))
        graph = nx.gnp_random_graph(size, edge_probability, seed=seed)
        return cls(graph, name=f"erdos_renyi(p={edge_probability:g})")

    @classmethod
    def barabasi_albert(
        cls, size: int, attachments: int, rng: RngLike = None
    ) -> "SocialNetwork":
        """Barabási–Albert preferential-attachment graph (scale-free degrees)."""
        size = check_positive_int(size, "size")
        attachments = check_positive_int(attachments, "attachments")
        if attachments >= size:
            raise ValueError("attachments must be smaller than size")
        seed = int(ensure_rng(rng).integers(2**31 - 1))
        graph = nx.barabasi_albert_graph(size, attachments, seed=seed)
        return cls(graph, name=f"barabasi_albert(m={attachments})")

    @classmethod
    def watts_strogatz(
        cls,
        size: int,
        nearest_neighbors: int,
        rewiring_probability: float,
        rng: RngLike = None,
    ) -> "SocialNetwork":
        """Watts–Strogatz small-world graph."""
        size = check_positive_int(size, "size")
        nearest_neighbors = check_positive_int(nearest_neighbors, "nearest_neighbors")
        rewiring_probability = check_in_range(
            rewiring_probability, "rewiring_probability", 0.0, 1.0
        )
        seed = int(ensure_rng(rng).integers(2**31 - 1))
        graph = nx.watts_strogatz_graph(
            size, nearest_neighbors, rewiring_probability, seed=seed
        )
        return cls(
            graph,
            name=f"watts_strogatz(k={nearest_neighbors}, p={rewiring_probability:g})",
        )

    @classmethod
    def standard_suite(cls, size: int, rng: RngLike = None) -> List["SocialNetwork"]:
        """The topology family used by experiment E9, all at the same size."""
        generator = ensure_rng(rng)
        side = max(2, int(np.sqrt(size)))
        return [
            cls.complete(size),
            cls.ring(size, neighbors_each_side=2),
            cls.grid(side, side),
            cls.star(size),
            cls.erdos_renyi(size, edge_probability=min(1.0, 8.0 / size), rng=generator),
            cls.barabasi_albert(size, attachments=3, rng=generator),
            cls.watts_strogatz(
                size, nearest_neighbors=6, rewiring_probability=0.1, rng=generator
            ),
        ]
