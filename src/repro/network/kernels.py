"""Optional numba-fused kernel for the CSR neighbour-sampling hot loop.

The vectorised network engines compute, per step, the committed-neighbour
option counts (a CSR gather + bincount materialising the ``(R, E)`` gather
and the ``(R, N, m)`` count tensor) followed by row-normalised inverse-CDF
sampling.  Those two passes are memory-bound: every byte of the count tensor
is written once and read once.  The fused kernel here walks each agent's CSR
row once, tallies the counts into an ``m``-length register histogram and
draws the inverse-CDF pick in the same pass — ``O(E + R·N·m)`` work with
``O(m)`` scratch per agent instead of ``O(R·(E + N·m))`` materialised
intermediates.

Given the same uniforms the fused pick is **bit-identical** to the two-pass
NumPy path (both compute ``u * total`` in float64 and select the first index
whose inclusive cumulative count exceeds the target, clamped to ``m - 1``),
so engines may switch freely between them — the golden fixtures pass either
way.  When numba is absent (:data:`HAS_NUMBA` false) the engines fall back
to the pure-NumPy two-pass path; the un-jitted kernel loop is kept importable
for equivalence tests but is never dispatched to in production.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

try:  # pragma: no cover - absence path exercised where numba is missing
    from numba import njit

    HAS_NUMBA = True
except ImportError:  # numba is an optional accelerator dependency
    njit = None
    HAS_NUMBA = False


def _gather_pick_loop(indptr, indices, choices, uniforms, num_options, picks, totals):
    """The fused CSR gather + inverse-CDF pick, written as plain loops.

    ``choices`` and ``uniforms`` have shape ``(R, N)``; ``picks``/``totals``
    are preallocated ``(R, N)`` int64 outputs.  Rows with no committed
    neighbour report ``totals == 0`` with the pick clamped to
    ``num_options - 1`` (callers mask on totals, exactly as with the NumPy
    path).  This function is the compilation *source*: numba jits it into
    :data:`_gather_pick_jit`; calling it un-jitted is only sensible for tiny
    equivalence tests.
    """
    num_replicates, num_agents = choices.shape
    histogram = np.zeros(num_options, dtype=np.int64)
    for replicate in range(num_replicates):
        for agent in range(num_agents):
            histogram[:] = 0
            total = 0
            for edge in range(indptr[agent], indptr[agent + 1]):
                choice = choices[replicate, indices[edge]]
                if choice >= 0:
                    histogram[choice] += 1
                    total += 1
            totals[replicate, agent] = total
            pick = num_options - 1
            if total > 0:
                target = uniforms[replicate, agent] * total
                accumulated = 0
                for option in range(num_options):
                    accumulated += histogram[option]
                    if target < accumulated:
                        pick = option
                        break
            picks[replicate, agent] = pick


if HAS_NUMBA:  # pragma: no cover - compiled only where numba is installed
    _gather_pick_jit = njit(cache=True)(_gather_pick_loop)
else:
    _gather_pick_jit = None


def fused_neighbor_pick(
    network,
    choices: np.ndarray,
    uniforms: np.ndarray,
    num_options: int,
    *,
    impl: Optional[Callable] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-pass committed-neighbour inverse-CDF sampling over a CSR graph.

    Parameters
    ----------
    network:
        The :class:`~repro.network.topology.SocialNetwork` (its cached
        ``csr_indptr``/``csr_indices`` arrays drive the row walks).
    choices:
        Current options, shape ``(N,)`` or ``(R, N)``; ``-1`` = sitting out.
    uniforms:
        Matching-shape float64 uniforms in ``[0, 1)``.
    num_options:
        Number of options ``m``.
    impl:
        Kernel override for tests (defaults to the numba-compiled kernel;
        requires :data:`HAS_NUMBA` when left at the default).

    Returns
    -------
    (picks, totals):
        Same contract as the NumPy two-pass path after its boundary clamp:
        ``picks`` in ``0..m-1`` and ``totals`` the committed-neighbour
        counts; rows with ``totals == 0`` must be masked by the caller.
    """
    kernel = impl if impl is not None else _gather_pick_jit
    if kernel is None:
        raise RuntimeError(
            "fused_neighbor_pick needs numba (not installed); use the "
            "pure-NumPy path instead"
        )
    squeeze = choices.ndim == 1
    if squeeze:
        choices = choices[None, :]
        uniforms = uniforms[None, :]
    picks = np.empty(choices.shape, dtype=np.int64)
    totals = np.empty(choices.shape, dtype=np.int64)
    kernel(
        network.csr_indptr,
        network.csr_indices,
        choices,
        np.asarray(uniforms, dtype=np.float64),
        num_options,
        picks,
        totals,
    )
    if squeeze:
        return picks[0], totals[0]
    return picks, totals
