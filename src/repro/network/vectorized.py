"""Vectorised sparse engines for the network-restricted dynamics.

The per-agent reference loop (:class:`~repro.network.dynamics.NetworkDynamics`)
advances one agent at a time in Python, which makes topology experiments at
``N = 10^4`` orders of magnitude slower than the batched core engine.  The two
engines here remove that loop by exploiting the sparse adjacency structure the
graph already has:

* :class:`VectorizedNetworkDynamics` computes every agent's committed-
  neighbour option counts ``S = A @ onehot(choices)`` (shape ``(N, m)``) in a
  single sparse matvec over the graph's CSR arrays — a gather of neighbour
  choices along ``csr_indices`` followed by one :func:`numpy.bincount` — then
  samples "a uniformly random committed neighbour's choice" per agent by
  row-normalised inverse-CDF sampling on ``S``.  No Python loop over agents.
* :class:`BatchedNetworkDynamics` adds a replicate axis: ``R`` replicates
  *sharing one graph* advance as a single ``(R, N)`` choices matrix per step.
  The per-step matvec is the same CSR gather applied to all rows at once —
  equivalent to one matvec ``A @ onehot`` on an ``(N, R·m)`` one-hot whose
  block ``r`` encodes replicate ``r``'s choices, realised as one flat
  bincount over ``(replicate, agent, option)`` keys.

Both engines simulate exactly the per-step law of the reference loop (explore
with probability ``mu``; otherwise copy a uniformly random committed
neighbour, falling back to uniform when the neighbourhood has no committed
member; then adopt via ``beta``/``alpha`` thinning).  They consume the random
stream differently from the loop, so equal seeds give different trajectories;
the equivalence is *distributional* and is enforced by KS / chi-squared
cross-validation in ``tests/integration/test_cross_validation.py``, with
bit-exact golden fixtures pinning each engine separately.

Memory model of the batched engine: per step it materialises the ``(R, E)``
neighbour-choice gather (``E`` = number of directed edge slots) and the
``(R, N, m)`` count tensor — ``O(R·(E + N·m))`` independent of the horizon;
the recorded trajectory stores only ``(R, m)`` aggregates per step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backends import (
    BackendLike,
    PrecisionLike,
    get_namespace,
    resolve_precision,
)
from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.batched import BatchedPopulationState, BatchedTrajectory
from repro.core.sampling import default_exploration_rate
from repro.core.state import PopulationState
from repro.environments.base import RewardEnvironment
from repro.network.dynamics import NetworkDynamicsBase
from repro.network.kernels import HAS_NUMBA, fused_neighbor_pick
from repro.network.topology import SocialNetwork
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int, check_probability


def _check_key_space(num_replicates: int, size: int, num_options: int) -> None:
    """Refuse bincount key spaces that would wrap the int64 flat index.

    The batched matvec flattens ``(replicate, agent, option)`` into one int64
    key, so it needs ``R * N * m <= 2**63 - 1``.  The product is taken over
    Python ints (which cannot wrap), so the guard fires *before* any array
    arithmetic could silently alias distinct keys.
    """
    span = int(num_replicates) * int(size) * int(num_options)
    if span > np.iinfo(np.int64).max:
        raise OverflowError(
            f"bincount key space R*N*m = {num_replicates} * {size} * "
            f"{num_options} = {span} overflows int64 flat indices; shard the "
            "replicate axis across runs instead"
        )


def resolve_use_numba(use_numba: Optional[bool]) -> bool:
    """Resolve the engines' ``use_numba`` knob against numba availability.

    ``None`` auto-selects the fused kernel exactly when numba is importable;
    ``True`` demands it (raising when the package is missing rather than
    silently falling back); ``False`` forces the pure-NumPy two-pass path.
    """
    if use_numba is None:
        return HAS_NUMBA
    if use_numba and not HAS_NUMBA:
        raise RuntimeError(
            "use_numba=True requires the 'numba' package, which is not "
            "installed; pass use_numba=None to auto-select or False for the "
            "pure-NumPy path"
        )
    return bool(use_numba)


def batched_key_base(
    network: SocialNetwork, num_replicates: int, num_options: int
) -> np.ndarray:
    """The constant ``(R, E)`` bincount-key base of the batched CSR matvec.

    ``base[r, e] = (r * N + edge_rows[e]) * m`` — adding a gathered neighbour
    choice to it yields the flat ``(replicate, agent, option)`` bincount key.
    It depends only on the graph and the batch shape, so
    :class:`BatchedNetworkDynamics` computes it once and reuses it every step
    (trading ``R·E`` int64s of memory — the same size as one step's
    throwaway intermediate — for two fewer large allocations per step).
    """
    _check_key_space(num_replicates, network.size, num_options)
    return (
        np.arange(num_replicates, dtype=np.int64)[:, None] * network.size
        + network.csr_edge_rows[None, :]
    ) * num_options


def committed_neighbor_counts(
    network: SocialNetwork,
    choices: np.ndarray,
    num_options: int,
    *,
    key_base: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-agent committed-neighbour option counts via one CSR gather + bincount.

    Parameters
    ----------
    network:
        The social graph (its CSR arrays are built once and cached).
    choices:
        Current options, shape ``(N,)`` or ``(R, N)``; ``-1`` = sitting out.
    num_options:
        Number of options ``m``.
    key_base:
        Optional precomputed :func:`batched_key_base` for the ``(R, N)``
        path; callers stepping the same batch repeatedly pass it to avoid
        rebuilding the constant offsets every step.

    Returns
    -------
    numpy.ndarray
        ``S`` with shape ``(N, m)`` (respectively ``(R, N, m)``):
        ``S[..., i, j]`` is the number of agent ``i``'s neighbours whose
        current choice is ``j`` — exactly ``A @ onehot(choices)`` with the
        sitting-out rows of the one-hot all zero.
    """
    indices = network.csr_indices
    size = network.size
    if choices.ndim == 1:
        _check_key_space(1, size, num_options)
        neighbor_choices = choices[indices]  # (E,) gather
        valid = neighbor_choices >= 0
        # Promote both key components to int64 explicitly: the gather
        # inherits whatever (possibly 32-bit) dtype the choices carry, and
        # N * m can exceed 2**31 long before it exceeds the int64 space the
        # guard above certifies.
        keys = network.csr_edge_rows[valid].astype(np.int64) * num_options + (
            neighbor_choices[valid].astype(np.int64)
        )
        return np.bincount(keys, minlength=size * num_options).reshape(
            size, num_options
        )
    num_replicates = choices.shape[0]
    neighbor_choices = choices[:, indices]  # (R, E) gather
    valid = neighbor_choices >= 0
    if key_base is None:
        key_base = batched_key_base(network, num_replicates, num_options)
    keys = (key_base + neighbor_choices)[valid]
    return np.bincount(keys, minlength=num_replicates * size * num_options).reshape(
        num_replicates, size, num_options
    )


def _inverse_cdf_rows(
    counts: np.ndarray, uniforms: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one index per row of ``counts`` with probability proportional to it.

    ``counts`` has shape ``(..., m)`` with non-negative integer rows;
    ``uniforms`` has the matching leading shape with values in ``[0, 1)``.
    The draw is row-normalised inverse-CDF sampling: index ``j`` wins iff
    ``u * total`` lands in ``[cdf_{j-1}, cdf_j)``, so option ``j`` is chosen
    with probability exactly ``counts[..., j] / total``.

    Returns ``(picks, totals)`` — the row totals fall out of the cumsum for
    free, and callers need them for the fallback mask.  Every pick is clamped
    to the valid range ``0..m-1``: for rows with a positive total the clamp
    is a no-op whenever ``u < 1`` strictly (the unclamped count of
    ``cdf <= target`` entries is already at most ``m - 1``), and it also
    repairs the ``u == 1.0`` boundary where the target ties the final CDF
    entry.  Rows summing to zero hit the clamp by construction and report
    ``m - 1`` — callers MUST still mask them via ``totals == 0`` (they are
    exactly the uniform-fallback agents).
    """
    cdf = np.cumsum(counts, axis=-1)
    totals = cdf[..., -1]
    targets = uniforms * totals
    picks = (targets[..., None] >= cdf).sum(axis=-1)
    return np.minimum(picks, counts.shape[-1] - 1), totals


class VectorizedNetworkDynamics(NetworkDynamicsBase):
    """Sparse vectorised implementation of the network-restricted dynamics.

    Same constructor, state accounting and per-step law as
    :class:`~repro.network.dynamics.NetworkDynamics` (plus the ``use_numba``
    knob); the step itself runs in ``O(E + N·m)`` NumPy work with no Python
    loop over agents.  The engines draw randomness in different orders, so
    equal seeds give different — statistically equivalent — trajectories
    (KS / chi-squared validated).  With ``use_numba`` the stage-1 gather and
    inverse-CDF draw fuse into one CSR pass via
    :func:`~repro.network.kernels.fused_neighbor_pick`; given the same seed
    the fused and two-pass trajectories are bit-identical.
    """

    def __init__(
        self,
        network: SocialNetwork,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        rng: RngLike = None,
        use_numba: Optional[bool] = None,
    ) -> None:
        super().__init__(
            network,
            num_options,
            adoption_rule=adoption_rule,
            exploration_rate=exploration_rate,
            rng=rng,
        )
        self._use_numba = resolve_use_numba(use_numba)

    @property
    def use_numba(self) -> bool:
        """Whether stage 1 dispatches to the fused numba kernel."""
        return self._use_numba

    # ------------------------------------------------------------------ step
    def step(self, rewards: np.ndarray) -> PopulationState:
        """Advance all agents one step given the reward vector ``R^{t+1}``."""
        rewards = self._validated_rewards(rewards)
        size = self._network.size

        explore_mask = self._rng.random(size) < self._mu
        uniform_options = self._rng.integers(
            self._num_options, size=size
        ).astype(np.int64)

        # Stage 1: committed-neighbour counts in one sparse matvec, then one
        # inverse-CDF draw per agent — "a uniformly random committed
        # neighbour's choice" without touching individual neighbourhoods.
        # The fused kernel computes the same picks/totals (bit-identical)
        # from the same uniforms in a single CSR pass.
        pick_uniforms = self._rng.random(size)
        if self._use_numba:
            neighbor_pick, totals = fused_neighbor_pick(
                self._network, self._choices, pick_uniforms, self._num_options
            )
        else:
            counts = committed_neighbor_counts(
                self._network, self._choices, self._num_options
            )
            neighbor_pick, totals = _inverse_cdf_rows(counts, pick_uniforms)
        no_committed_neighbor = totals == 0
        considered = np.where(
            explore_mask | no_committed_neighbor, uniform_options, neighbor_pick
        )

        # Stage 2: adopt via beta/alpha thinning on the fresh signals.
        adopt_probability = self._adoption_rule.adopt_probabilities(
            rewards[considered]
        )
        adopted = self._rng.random(size) < adopt_probability
        self._choices = np.where(adopted, considered, -1).astype(np.int64)
        self._time += 1
        return self.state()


class BatchedNetworkDynamics:
    """Replicate-axis vectorised simulator of the network-restricted dynamics.

    Advances ``R`` statistically independent replicates *sharing one graph*
    as a single ``(R, N)`` choices matrix per step: one CSR matvec on the
    reshaped ``(N, R·m)`` one-hot produces every replicate's committed-
    neighbour counts at once, followed by batched inverse-CDF sampling and
    one broadcast adoption thinning.  The graph (and its CSR arrays) is built
    once and shared read-only across replicates — memory is ``O(E + R·N)``
    for the dynamic state, not ``O(R·E)``.

    All replicates share one generator, so a batch is reproducible from a
    single seed but individual replicates are not independently re-runnable
    (same contract as :class:`~repro.core.batched.BatchedDynamics`; use the
    single-replicate engines with per-seed loops when that is required).

    Parameters
    ----------
    network:
        The social graph shared by every replicate.
    num_options:
        Number of options ``m``.
    num_replicates:
        Number of independent replicates ``R``.
    adoption_rule:
        The shared adoption function; defaults to the symmetric rule with
        ``beta = 0.6``.
    exploration_rate:
        The probability ``mu`` of uniform exploration in stage (1).
    rng:
        Seed or generator.
    backend:
        Array backend name or instance (default NumPy); see
        :func:`repro.backends.get_namespace`.
    precision:
        Storage precision (default float64/int64).  Random draws always run
        in float64, so the stored-state dtype does not perturb the stream —
        trajectories at every precision are bit-identical up to storage
        rounding of the recorded popularity.
    use_numba:
        ``None`` auto-selects the fused CSR kernel when numba is installed;
        ``True`` requires it; ``False`` forces the pure-NumPy two-pass path.
    """

    def __init__(
        self,
        network: SocialNetwork,
        num_options: int,
        num_replicates: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        rng: RngLike = None,
        backend: BackendLike = None,
        precision: PrecisionLike = None,
        use_numba: Optional[bool] = None,
    ) -> None:
        if not isinstance(network, SocialNetwork):
            raise TypeError("network must be a SocialNetwork")
        self._network = network
        self._num_options = check_positive_int(num_options, "num_options")
        self._num_replicates = check_positive_int(num_replicates, "num_replicates")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        self._mu = check_probability(exploration_rate, "exploration_rate")
        self._backend = get_namespace(backend)
        self._precision = resolve_precision(precision)
        self._precision.check_count_value(int(network.size), "network size")
        self._use_numba = resolve_use_numba(use_numba)
        self._rng = self._backend.rng(rng)
        self._time = 0
        self._choices = self._backend.to_numpy(
            self._rng.integers(num_options, size=(num_replicates, network.size))
        ).astype(self._precision.int_dtype)
        # Constant across steps; precomputed so the hot loop's matvec is a
        # pure gather + add + bincount.
        self._key_base = batched_key_base(network, num_replicates, num_options)

    # ------------------------------------------------------------ properties
    @property
    def network(self) -> SocialNetwork:
        """The social graph shared by every replicate."""
        return self._network

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R``."""
        return self._num_replicates

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The shared adoption rule."""
        return self._adoption_rule

    @property
    def exploration_rate(self) -> float:
        """The exploration probability ``mu``."""
        return self._mu

    @property
    def time(self) -> int:
        """Number of steps simulated."""
        return self._time

    @property
    def backend(self):
        """The array backend the engine draws randomness through."""
        return self._backend

    @property
    def precision(self):
        """The storage :class:`~repro.backends.Precision` of the engine."""
        return self._precision

    @property
    def use_numba(self) -> bool:
        """Whether stage 1 dispatches to the fused numba kernel."""
        return self._use_numba

    def choices(self) -> np.ndarray:
        """Per-replicate, per-agent current options, shape ``(R, N)``; copy."""
        return self._choices.copy()

    def set_choices(self, choices: np.ndarray) -> None:
        """Overwrite the whole ``(R, N)`` choices matrix (-1 means sitting out)."""
        choices = np.asarray(choices)
        expected = (self._num_replicates, self._network.size)
        if choices.shape != expected:
            raise ValueError(
                f"choices must have shape {expected}, got {choices.shape}"
            )
        if np.any(choices < -1) or np.any(choices >= self._num_options):
            raise ValueError(
                f"choices must lie in -1..{self._num_options - 1} (got range "
                f"[{choices.min()}, {choices.max()}])"
            )
        self._choices = choices.astype(self._precision.int_dtype).copy()

    def state(self) -> BatchedPopulationState:
        """Aggregate ``(R, m)`` committed counts of every replicate."""
        committed = self._choices >= 0
        keys = (
            np.arange(self._num_replicates, dtype=np.int64)[:, None]
            * self._num_options
            + self._choices.astype(np.int64)
        )[committed]
        counts = np.bincount(
            keys, minlength=self._num_replicates * self._num_options
        ).reshape(self._num_replicates, self._num_options)
        return BatchedPopulationState(
            counts=counts.astype(self._precision.int_dtype),
            population_size=self._network.size,
            time=self._time,
        )

    def popularity(self) -> np.ndarray:
        """Per-replicate popularity among committed agents, shape ``(R, m)``."""
        return self.state().popularity()

    # ------------------------------------------------------------------ step
    def step(self, rewards: np.ndarray) -> BatchedPopulationState:
        """Advance every replicate one step given the rewards ``R^{t+1}``.

        Parameters
        ----------
        rewards:
            An ``(R, m)`` matrix of per-replicate binary reward realisations,
            or a single ``(m,)`` vector shared by all replicates (the
            coupled / common-rewards regime).
        """
        rewards = np.asarray(rewards)
        if rewards.shape == (self._num_options,):
            rewards = np.broadcast_to(
                rewards, (self._num_replicates, self._num_options)
            )
        elif rewards.shape != (self._num_replicates, self._num_options):
            raise ValueError(
                f"rewards must have shape ({self._num_replicates}, "
                f"{self._num_options}) or ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        to_numpy = self._backend.to_numpy
        shape = (self._num_replicates, self._network.size)
        explore_mask = to_numpy(self._rng.random(shape)) < self._mu
        uniform_options = to_numpy(
            self._rng.integers(self._num_options, size=shape)
        ).astype(np.int64)

        # Stage 1: either the fused single-pass CSR kernel or the two-pass
        # gather + inverse-CDF path — bit-identical given the same uniforms.
        pick_uniforms = to_numpy(self._rng.random(shape))
        if self._use_numba:
            neighbor_pick, totals = fused_neighbor_pick(
                self._network, self._choices, pick_uniforms, self._num_options
            )
        else:
            counts = committed_neighbor_counts(
                self._network,
                self._choices,
                self._num_options,
                key_base=self._key_base,
            )  # (R, N, m)
            neighbor_pick, totals = _inverse_cdf_rows(counts, pick_uniforms)
        no_committed_neighbor = totals == 0
        considered = np.where(
            explore_mask | no_committed_neighbor, uniform_options, neighbor_pick
        )

        considered_rewards = np.take_along_axis(rewards, considered, axis=1)
        adopt_probability = self._adoption_rule.adopt_probabilities(
            considered_rewards
        )
        adopted = to_numpy(self._rng.random(shape)) < adopt_probability
        self._choices = np.where(adopted, considered, -1).astype(
            self._precision.int_dtype
        )
        self._time += 1
        return self.state()

    def run(self, environment: RewardEnvironment, horizon: int) -> BatchedTrajectory:
        """Simulate ``horizon`` steps of every replicate against ``environment``.

        Each step draws one ``(R, m)`` reward batch via
        :meth:`~repro.environments.base.RewardEnvironment.sample_batch`, so
        replicates observe independent reward realisations from the same
        environment instance (sharing its quality path, if it drifts).
        """
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        state = self.state()
        trajectory = BatchedTrajectory(initial_state=state)
        float_dtype = self._precision.float_dtype
        for _ in range(horizon):
            pre_step_popularity = state.popularity(dtype=float_dtype)
            rewards = environment.sample_batch(self._num_replicates)
            state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, state)
        return trajectory


def simulate_batched_network_dynamics(
    environment: RewardEnvironment,
    network: SocialNetwork,
    horizon: int,
    num_replicates: int,
    *,
    beta: float = 0.6,
    mu: Optional[float] = None,
    rng: RngLike = None,
    backend: BackendLike = None,
    precision: PrecisionLike = None,
    use_numba: Optional[bool] = None,
) -> BatchedTrajectory:
    """One-call helper: run ``num_replicates`` network replicates on one graph.

    The network counterpart of
    :func:`~repro.core.batched.simulate_batched_population`: every replicate
    shares the graph and one generator, and the ``mu`` default is the same
    theorem maximum every other engine derives via
    :func:`~repro.core.sampling.default_exploration_rate`.
    """
    adoption_rule = SymmetricAdoptionRule(beta)
    if mu is None:
        mu = default_exploration_rate(adoption_rule)
    dynamics = BatchedNetworkDynamics(
        network=network,
        num_options=environment.num_options,
        num_replicates=num_replicates,
        adoption_rule=adoption_rule,
        exploration_rate=mu,
        rng=rng,
        backend=backend,
        precision=precision,
        use_numba=use_numba,
    )
    return dynamics.run(environment, horizon)
