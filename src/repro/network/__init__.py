"""Social-network-restricted sampling (the paper's first open problem).

Section 6 asks: *"extend our results to the social network setting where
individuals can only sample in step (1) from their neighbors.  The question
here would be whether, and to what extent, the efficiency of the group remains
as a function of the network topology."*

This subpackage provides the substrate to study that question empirically:

* :class:`SocialNetwork` — a thin wrapper around :mod:`networkx` graphs with
  the neighbour queries the dynamics needs (per-node arrays *and* a cached
  CSR view for the vectorised engines) plus the topology statistics (degree,
  diameter, clustering, spectral gap) the results are reported against;
* topology constructors for the standard families (complete, ring, 2-D grid,
  star, Erdős–Rényi, Barabási–Albert, Watts–Strogatz);
* :class:`NetworkDynamics` — the paper's two-stage dynamics with stage (1)
  restricted to each individual's neighbourhood (per-agent reference loop);
* :class:`VectorizedNetworkDynamics` — the same process with every agent
  advanced at once via one sparse CSR matvec per step; and
* :class:`BatchedNetworkDynamics` — ``R`` replicates sharing one graph,
  advanced as a single ``(R, N)`` choices matrix per step.

On the complete graph the network dynamics coincides (in distribution) with
the original dynamics, which the test suite verifies; the vectorised and
batched engines are KS / chi-squared cross-validated against the loop engine
on sparse topologies.
"""

from repro.network.topology import SocialNetwork
from repro.network.dynamics import (
    NetworkDynamics,
    NetworkDynamicsBase,
    simulate_network_dynamics,
)
from repro.network.vectorized import (
    BatchedNetworkDynamics,
    VectorizedNetworkDynamics,
    committed_neighbor_counts,
    simulate_batched_network_dynamics,
)

__all__ = [
    "SocialNetwork",
    "NetworkDynamics",
    "NetworkDynamicsBase",
    "VectorizedNetworkDynamics",
    "BatchedNetworkDynamics",
    "committed_neighbor_counts",
    "simulate_network_dynamics",
    "simulate_batched_network_dynamics",
]
