"""The two-stage dynamics with neighbourhood-restricted sampling.

Stage (1) is modified so that an individual observes the previous-step choice
of a uniformly random *neighbour* in the social graph (rather than of any
group member); stage (2) is unchanged.  With the complete graph this reduces
to the original dynamics.

The simulator is vectorised over agents per step (adjacency handled through
per-agent neighbour arrays), which keeps topology sweeps over thousands of
agents practical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.state import PopulationState, Trajectory
from repro.environments.base import RewardEnvironment
from repro.network.topology import SocialNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


class NetworkDynamics:
    """Finite-population social learning restricted to a social network.

    Each individual keeps its current option (or "sitting out").  Per step:

    1. with probability ``mu`` consider a uniformly random option; otherwise
       pick a uniformly random neighbour and consider the option that
       neighbour held after the previous step (if the neighbour is sitting
       out, or the individual has no neighbours, fall back to a uniformly
       random option);
    2. adopt the considered option with probability ``beta``/``alpha``
       depending on its fresh quality signal, else sit out this step.

    Parameters
    ----------
    network:
        The social graph over the ``N`` individuals.
    num_options:
        Number of options ``m``.
    adoption_rule:
        The shared adoption function; defaults to the symmetric rule with
        ``beta = 0.6``.
    exploration_rate:
        The probability ``mu`` of uniform exploration in stage (1).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        network: SocialNetwork,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        rng: RngLike = None,
    ) -> None:
        if not isinstance(network, SocialNetwork):
            raise TypeError("network must be a SocialNetwork")
        self._network = network
        self._num_options = check_positive_int(num_options, "num_options")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        self._mu = check_probability(exploration_rate, "exploration_rate")
        self._rng = ensure_rng(rng)
        self._time = 0
        # choices[i] is the option agent i holds, or -1 when sitting out.
        self._choices = self._rng.integers(
            num_options, size=network.size
        ).astype(np.int64)

    # ------------------------------------------------------------ properties
    @property
    def network(self) -> SocialNetwork:
        """The social graph."""
        return self._network

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The shared adoption rule."""
        return self._adoption_rule

    @property
    def exploration_rate(self) -> float:
        """The exploration probability ``mu``."""
        return self._mu

    @property
    def time(self) -> int:
        """Number of steps simulated."""
        return self._time

    def choices(self) -> np.ndarray:
        """Per-agent current options (-1 means sitting out); copy."""
        return self._choices.copy()

    def set_choices(self, choices: np.ndarray) -> None:
        """Overwrite every agent's current option (-1 means sitting out).

        Scenario setup hook: start a run from a prescribed configuration
        (warm starts, adversarial initialisations, or — in the tests — a
        group where every neighbour sits out, which exercises the uniform
        fallback of stage 1).
        """
        choices = np.asarray(choices)
        if choices.shape != (self._network.size,):
            raise ValueError(
                f"choices must have shape ({self._network.size},), got {choices.shape}"
            )
        if np.any(choices < -1) or np.any(choices >= self._num_options):
            raise ValueError(
                f"choices must lie in -1..{self._num_options - 1} (got range "
                f"[{choices.min()}, {choices.max()}])"
            )
        self._choices = choices.astype(np.int64).copy()

    def state(self) -> PopulationState:
        """Aggregate population state (counts of committed agents per option)."""
        committed = self._choices[self._choices >= 0]
        counts = np.bincount(committed, minlength=self._num_options)
        return PopulationState(
            counts=counts.astype(np.int64),
            population_size=self._network.size,
            time=self._time,
        )

    def popularity(self) -> np.ndarray:
        """Popularity distribution among committed agents (uniform if none)."""
        return self.state().popularity()

    # ------------------------------------------------------------------ step
    def step(self, rewards: np.ndarray) -> PopulationState:
        """Advance all agents one step given the reward vector ``R^{t+1}``."""
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        size = self._network.size
        previous_choices = self._choices
        considered = np.empty(size, dtype=np.int64)

        explore_mask = self._rng.random(size) < self._mu
        uniform_options = self._rng.integers(self._num_options, size=size)

        for agent in range(size):
            if explore_mask[agent]:
                considered[agent] = uniform_options[agent]
                continue
            neighbors = self._network.neighbors(agent)
            if neighbors.size == 0:
                considered[agent] = uniform_options[agent]
                continue
            # Observe a uniformly random *committed* neighbour, mirroring the
            # population-level sampling probabilities (Eq. 2) which are defined
            # over the committed sub-population.  If every neighbour is sitting
            # out, fall back to uniform exploration.
            neighbor_choices = previous_choices[neighbors]
            committed_choices = neighbor_choices[neighbor_choices >= 0]
            if committed_choices.size == 0:
                considered[agent] = uniform_options[agent]
            else:
                considered[agent] = committed_choices[
                    int(self._rng.integers(committed_choices.size))
                ]

        adopt_probability = np.where(
            rewards[considered] == 1,
            self._adoption_rule.beta,
            self._adoption_rule.alpha,
        )
        adopted = self._rng.random(size) < adopt_probability
        self._choices = np.where(adopted, considered, -1).astype(np.int64)
        self._time += 1
        return self.state()

    def run(self, environment: RewardEnvironment, horizon: int) -> Trajectory:
        """Simulate ``horizon`` steps against ``environment``; record the trajectory."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        trajectory = Trajectory(initial_state=self.state())
        for _ in range(horizon):
            pre_step_popularity = self.popularity()
            rewards = environment.sample()
            new_state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, new_state)
        return trajectory


def simulate_network_dynamics(
    environment: RewardEnvironment,
    network: SocialNetwork,
    horizon: int,
    *,
    beta: float = 0.6,
    mu: Optional[float] = None,
    rng: RngLike = None,
) -> Trajectory:
    """One-call helper mirroring :func:`repro.core.dynamics.simulate_finite_population`."""
    adoption_rule = SymmetricAdoptionRule(beta)
    if mu is None:
        delta = adoption_rule.delta
        mu = min(1.0, delta**2 / 6.0) if np.isfinite(delta) and delta > 0 else 0.01
    dynamics = NetworkDynamics(
        network=network,
        num_options=environment.num_options,
        adoption_rule=adoption_rule,
        exploration_rate=mu,
        rng=rng,
    )
    return dynamics.run(environment, horizon)
