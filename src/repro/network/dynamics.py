"""The two-stage dynamics with neighbourhood-restricted sampling.

Stage (1) is modified so that an individual observes the previous-step choice
of a uniformly random *neighbour* in the social graph (rather than of any
group member); stage (2) is unchanged.  With the complete graph this reduces
to the original dynamics.

Two single-replicate engines implement the same per-step law:

* :class:`NetworkDynamics` — the per-agent reference loop (one Python
  iteration per agent per step); and
* :class:`~repro.network.vectorized.VectorizedNetworkDynamics` — the sparse
  vectorised engine, which computes every agent's committed-neighbour option
  counts in one CSR matvec and samples the considered options in bulk.

Both share :class:`NetworkDynamicsBase` (state, validation, the run loop), so
they differ only in how :meth:`~NetworkDynamicsBase.step` realises the
transition.  The engines consume randomness differently, so equal seeds give
different trajectories; the equivalence is distributional, enforced by the
KS / chi-squared cross-validation in ``tests/integration/``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.sampling import default_exploration_rate
from repro.core.state import PopulationState, Trajectory
from repro.environments.base import RewardEnvironment
from repro.network.topology import SocialNetwork
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


class NetworkDynamicsBase:
    """Shared substrate of the single-replicate network engines.

    Owns the configuration (graph, option count, adoption rule, exploration
    rate, generator), the per-agent choice vector, and everything that does
    not depend on *how* a step is computed: state accounting, choice
    overrides, and the run loop.  Subclasses implement :meth:`step`.

    Each individual keeps its current option (or "sitting out").  Per step:

    1. with probability ``mu`` consider a uniformly random option; otherwise
       pick a uniformly random *committed* neighbour and consider the option
       that neighbour held after the previous step (if every neighbour is
       sitting out, or the individual has no neighbours, fall back to a
       uniformly random option);
    2. adopt the considered option with probability ``beta``/``alpha``
       depending on its fresh quality signal, else sit out this step.

    Parameters
    ----------
    network:
        The social graph over the ``N`` individuals.
    num_options:
        Number of options ``m``.
    adoption_rule:
        The shared adoption function; defaults to the symmetric rule with
        ``beta = 0.6``.
    exploration_rate:
        The probability ``mu`` of uniform exploration in stage (1).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        network: SocialNetwork,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        rng: RngLike = None,
    ) -> None:
        if not isinstance(network, SocialNetwork):
            raise TypeError("network must be a SocialNetwork")
        self._network = network
        self._num_options = check_positive_int(num_options, "num_options")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        self._mu = check_probability(exploration_rate, "exploration_rate")
        self._rng = ensure_rng(rng)
        self._time = 0
        # choices[i] is the option agent i holds, or -1 when sitting out.
        self._choices = self._rng.integers(
            num_options, size=network.size
        ).astype(np.int64)

    # ------------------------------------------------------------ properties
    @property
    def network(self) -> SocialNetwork:
        """The social graph."""
        return self._network

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The shared adoption rule."""
        return self._adoption_rule

    @property
    def exploration_rate(self) -> float:
        """The exploration probability ``mu``."""
        return self._mu

    @property
    def time(self) -> int:
        """Number of steps simulated."""
        return self._time

    def choices(self) -> np.ndarray:
        """Per-agent current options (-1 means sitting out); copy."""
        return self._choices.copy()

    def set_choices(self, choices: np.ndarray) -> None:
        """Overwrite every agent's current option (-1 means sitting out).

        Scenario setup hook: start a run from a prescribed configuration
        (warm starts, adversarial initialisations, or — in the tests — a
        group where every neighbour sits out, which exercises the uniform
        fallback of stage 1).
        """
        choices = np.asarray(choices)
        if choices.shape != (self._network.size,):
            raise ValueError(
                f"choices must have shape ({self._network.size},), got {choices.shape}"
            )
        if np.any(choices < -1) or np.any(choices >= self._num_options):
            raise ValueError(
                f"choices must lie in -1..{self._num_options - 1} (got range "
                f"[{choices.min()}, {choices.max()}])"
            )
        self._choices = choices.astype(np.int64).copy()

    def state(self) -> PopulationState:
        """Aggregate population state (counts of committed agents per option)."""
        committed = self._choices[self._choices >= 0]
        counts = np.bincount(committed, minlength=self._num_options)
        return PopulationState(
            counts=counts.astype(np.int64),
            population_size=self._network.size,
            time=self._time,
        )

    def popularity(self) -> np.ndarray:
        """Popularity distribution among committed agents (uniform if none)."""
        return self.state().popularity()

    def _validated_rewards(self, rewards: np.ndarray) -> np.ndarray:
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")
        return rewards

    def step(self, rewards: np.ndarray) -> PopulationState:
        """Advance all agents one step given the reward vector ``R^{t+1}``."""
        raise NotImplementedError

    def run(self, environment: RewardEnvironment, horizon: int) -> Trajectory:
        """Simulate ``horizon`` steps against ``environment``; record the trajectory."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        # One state per step: the pre-step popularity is read off the state
        # the previous step() already computed instead of rebuilding the
        # bincount from the raw choices a second time.
        state = self.state()
        trajectory = Trajectory(initial_state=state)
        for _ in range(horizon):
            pre_step_popularity = state.popularity()
            rewards = environment.sample()
            state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, state)
        return trajectory


class NetworkDynamics(NetworkDynamicsBase):
    """Per-agent reference implementation of the network-restricted dynamics.

    Advances one agent at a time in Python; exact but slow — at large ``N``
    use :class:`~repro.network.vectorized.VectorizedNetworkDynamics`, which
    simulates the same process orders of magnitude faster (see
    ``benchmarks/test_bench_network.py``).
    """

    # ------------------------------------------------------------------ step
    def step(self, rewards: np.ndarray) -> PopulationState:
        """Advance all agents one step given the reward vector ``R^{t+1}``."""
        rewards = self._validated_rewards(rewards)

        size = self._network.size
        previous_choices = self._choices
        considered = np.empty(size, dtype=np.int64)

        explore_mask = self._rng.random(size) < self._mu
        uniform_options = self._rng.integers(self._num_options, size=size)

        for agent in range(size):
            if explore_mask[agent]:
                considered[agent] = uniform_options[agent]
                continue
            neighbors = self._network.neighbors(agent)
            if neighbors.size == 0:
                considered[agent] = uniform_options[agent]
                continue
            # Observe a uniformly random *committed* neighbour, mirroring the
            # population-level sampling probabilities (Eq. 2) which are defined
            # over the committed sub-population.  If every neighbour is sitting
            # out, fall back to uniform exploration.
            neighbor_choices = previous_choices[neighbors]
            committed_choices = neighbor_choices[neighbor_choices >= 0]
            if committed_choices.size == 0:
                considered[agent] = uniform_options[agent]
            else:
                considered[agent] = committed_choices[
                    int(self._rng.integers(committed_choices.size))
                ]

        adopt_probability = np.where(
            rewards[considered] == 1,
            self._adoption_rule.beta,
            self._adoption_rule.alpha,
        )
        adopted = self._rng.random(size) < adopt_probability
        self._choices = np.where(adopted, considered, -1).astype(np.int64)
        self._time += 1
        return self.state()


def simulate_network_dynamics(
    environment: RewardEnvironment,
    network: SocialNetwork,
    horizon: int,
    *,
    beta: float = 0.6,
    mu: Optional[float] = None,
    rng: RngLike = None,
    engine: str = "loop",
) -> Trajectory:
    """One-call helper mirroring :func:`repro.core.dynamics.simulate_finite_population`.

    ``engine`` selects the implementation: ``"loop"`` (the per-agent
    reference, default) or ``"vectorized"`` (the sparse CSR engine — same
    process, orders of magnitude faster at large ``N``).  The engines consume
    randomness differently, so equal seeds give different — statistically
    equivalent — trajectories.
    """
    adoption_rule = SymmetricAdoptionRule(beta)
    if mu is None:
        mu = default_exploration_rate(adoption_rule)
    if engine == "loop":
        dynamics: NetworkDynamicsBase = NetworkDynamics(
            network=network,
            num_options=environment.num_options,
            adoption_rule=adoption_rule,
            exploration_rate=mu,
            rng=rng,
        )
    elif engine == "vectorized":
        from repro.network.vectorized import VectorizedNetworkDynamics

        dynamics = VectorizedNetworkDynamics(
            network=network,
            num_options=environment.num_options,
            adoption_rule=adoption_rule,
            exploration_rate=mu,
            rng=rng,
        )
    else:
        raise ValueError(f"engine must be 'loop' or 'vectorized', got {engine!r}")
    return dynamics.run(environment, horizon)
