"""Command-line interface for quick simulations and bound calculations.

Eleven subcommands cover the workflows a user reaches for most often without
writing a script::

    python -m repro simulate --options 0.8 0.5 0.5 --population 2000 --horizon 300
    python -m repro run      --options 0.8 0.5 0.5 --population 100000 --replications 100
    python -m repro bounds   --num-options 5 --beta 0.6 --population 5000
    python -m repro coupling --population 10000 --horizon 8
    python -m repro sweep    --populations 100 1000 10000 --horizon 300 --output sweep.csv
    python -m repro network  --topology watts_strogatz --size 10000 --replications 50
    python -m repro protocol --nodes 10000 --loss 0.2 --mass-crash-fraction 0.4
    python -m repro serve    --port 8765 --store results.sqlite
    python -m repro campaign --spec campaign.json --backend pool --store results.sqlite
    python -m repro broker   --coordinator tcp://coordinator-host:5555 --workers 4
    python -m repro trace    summarize trace.jsonl

``run`` executes many independent replications at once on the batched
replicate-axis engine (:class:`repro.core.batched.BatchedDynamics`); pass
``--engine loop`` to fall back to the sequential per-seed loop.  ``sweep``
goes further: the whole ``(N x beta x mu)`` parameter grid times its
replications runs as a *single* batched launch with per-row parameters
(``--engine loop`` falls back to the per-point per-seed loop).  ``network``
runs the neighbourhood-restricted dynamics on a chosen topology — by default
on the replicate-batched sparse engine
(:class:`repro.network.vectorized.BatchedNetworkDynamics`); ``--engine
vectorized`` runs one replicate per seed on the sparse engine and
``--engine loop`` falls back to the per-agent reference loop.  ``protocol``
runs the message-passing distributed protocol under message loss and
crash-stop failures — by default on the replicate-batched
:class:`repro.distributed.vectorized.BatchedProtocol`; only ``--engine
loop`` models per-message delay (``--delay``).

``sweep``, ``network`` and ``protocol`` additionally accept the parallel
runtime flags (``--workers K --store PATH [--resume]``): the workload is
sharded across ``K`` worker processes and every computed result lands in a
content-addressed sqlite store that serves cache hits on re-runs and lets a
killed run resume shard-by-shard — with bit-identical metrics at any worker
count (see the README's "Scaling out" guide).  All three derive their
workload through the shared request layer (:mod:`repro.service.requests`),
the same path ``serve`` — the long-running simulation-as-a-service API
daemon (job submission, polling, cache-first result serving; see the
README's "Serving" guide) — executes for jobs submitted over HTTP, so a CLI
invocation and the equivalent API job produce bit-identical rows.

``campaign`` runs a whole experiment campaign — a typed simulate → analyse
→ report compute DAG (:mod:`repro.campaign`) — on a chosen backend:
``--backend inproc`` (in-process), ``pool`` (worker processes) or ``broker``
(the socket coordinator; point ``repro broker --coordinator tcp://HOST:PORT``
processes, on any machine, at the endpoint given via ``--brokers``).  All
backends produce bit-identical results, and with ``--store`` a killed
campaign resumes from cache.  See the README's "Campaigns" guide.

The runtime-enabled commands (``sweep``/``network``/``protocol``/``campaign``)
and ``serve`` additionally accept ``--trace-out PATH`` (default: the
``REPRO_TRACE_OUT`` environment variable): every span — per-shard execution,
cache lookups, campaign DAG nodes — is appended to a JSONL trace file that
``repro trace summarize PATH`` renders as a per-phase latency breakdown.
See the README's "Observability" guide.

Every command prints an aligned text table; ``--output`` additionally writes
CSV via :func:`repro.experiments.io.write_csv`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro import __version__
from repro.backends import BACKENDS, PRECISIONS
from repro.campaign import (
    BACKEND_NAMES as CAMPAIGN_BACKENDS,
    BrokerError,
    CampaignError,
    campaign_from_spec,
    make_backend,
    run_broker,
    run_campaign,
)
from repro.core.batched import simulate_batched_population
from repro.core.coupling import run_coupled_dynamics
from repro.core.dynamics import simulate_finite_population
from repro.core.infinite import simulate_infinite_population
from repro.core.regret import best_option_share, expected_regret
from repro.core.theory import TheoryBounds
from repro.environments import BernoulliEnvironment
from repro.experiments import (
    NETWORK_ENGINES,
    PROTOCOL_ENGINES,
    ExperimentConfig,
    ResultTable,
    batched_replication,
    build_network,
    run_replications,
    write_csv,
)
from repro.obs import TRACE_OUT_ENV, JsonlSink, Tracer, summarize_trace_file
from repro.runtime import ExecutionOptions, ParallelExecutor, ResultStore
from repro.service.daemon import SimulationDaemon, SimulationService
from repro.service.requests import (
    RequestError,
    execute_request,
    network_request,
    prepare_request,
    protocol_request,
    sweep_request,
)
from repro.utils.ascii_plot import ascii_line_plot


def _add_engine_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the array-engine flags shared by sweep/network/protocol."""
    engine = subparser.add_argument_group(
        "array engine",
        "select the array backend and storage precision of the batched "
        "engines (see the README's 'Backends & precision' section); "
        "non-default values require --engine batched and get their own "
        "result-store cache entries",
    )
    engine.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help=(
            "array backend (default numpy; cupy/torch are optional extras "
            "and fail fast when not installed)"
        ),
    )
    engine.add_argument(
        "--dtype",
        choices=tuple(PRECISIONS),
        default=None,
        help=(
            "storage precision (default float64/int64; float32/int32 "
            "roughly halves batch memory, statistically equivalent)"
        ),
    )


def _add_runtime_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the parallel-runtime flags shared by sweep/network/protocol."""
    runtime = subparser.add_argument_group(
        "parallel runtime",
        "shard the workload across worker processes and cache results in a "
        "content-addressed sqlite store (see the README's 'Scaling out' "
        "guide); results are bit-identical at any worker count",
    )
    runtime.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default 1 = in-process serial execution)",
    )
    runtime.add_argument(
        "--store",
        type=str,
        default=None,
        help=(
            "sqlite result store path: completed shards are flushed as they "
            "finish and matching results are served from cache instead of "
            "recomputed"
        ),
    )
    runtime.add_argument(
        "--resume",
        action="store_true",
        help=(
            "fail fast unless --store already exists (continuing an "
            "interrupted run); with --store, cache reuse itself is always on"
        ),
    )
    runtime.add_argument(
        "--store-hot-mb",
        type=float,
        default=64.0,
        help=(
            "in-memory hot-tier budget of the result store in MiB (default "
            "64); entries beyond it are served from the columnar cold tier"
        ),
    )
    _add_trace_argument(runtime)


def _add_trace_argument(target: Any) -> None:
    """Attach the shared ``--trace-out`` flag to a parser or argument group."""
    target.add_argument(
        "--trace-out",
        type=str,
        default=None,
        help=(
            "append structured trace records (spans, shard timings, cache "
            "events) to this JSONL file; defaults to the "
            f"{TRACE_OUT_ENV} environment variable; summarize with "
            "`repro trace summarize PATH`"
        ),
    )


def _open_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """Build a JSONL tracer from ``--trace-out`` / ``REPRO_TRACE_OUT``."""
    path = args.trace_out or os.environ.get(TRACE_OUT_ENV)
    if not path:
        return None
    try:
        return Tracer(JsonlSink(path))
    except OSError as error:
        print(f"error: cannot open trace file {path}: {error}", file=sys.stderr)
        raise SystemExit(2)


def _open_store(args: argparse.Namespace) -> Optional[ResultStore]:
    """Validate and open the ``--store``/``--resume`` flags (or ``None``)."""
    if args.resume and not args.store:
        print("error: --resume needs --store PATH", file=sys.stderr)
        raise SystemExit(2)
    if args.store_hot_mb <= 0:
        print(
            f"error: --store-hot-mb must be positive, got {args.store_hot_mb}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if not args.store:
        return None
    if args.resume and not Path(args.store).exists():
        print(
            f"error: cannot resume: no result store at {args.store}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return ResultStore(args.store, hot_budget_bytes=int(args.store_hot_mb * 2**20))


def _runtime_options(args: argparse.Namespace) -> Optional[ExecutionOptions]:
    """Translate --workers/--store/--resume into an :class:`ExecutionOptions`."""
    if args.workers < 1:
        print(
            f"error: --workers must be at least 1, got {args.workers}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    store = _open_store(args)
    executor = ParallelExecutor(args.workers) if args.workers > 1 else None
    tracer = _open_tracer(args)
    if store is None and executor is None and tracer is None:
        return None
    return ExecutionOptions(executor=executor, store=store, tracer=tracer)


def _warn_single_task(args: argparse.Namespace) -> None:
    """Note when --workers cannot help because the engine is replicate-batched."""
    if args.workers > 1 and args.engine == "batched":
        print(
            "note: the batched engine advances all replicates as one "
            "indivisible task, so --workers adds no parallelism here; use "
            "--engine vectorized (or loop) to shard across seeds",
            file=sys.stderr,
        )


def _print_store_stats(store: Optional[ResultStore]) -> None:
    """Report cache statistics and release the store, if one was opened."""
    if store is not None:
        counters = store.counters()
        print(
            f"store {store.path}: {store.hits} cache hits, "
            f"{store.misses} misses, {len(store)} rows"
        )
        print(
            f"tiers: {counters.hot_hits} hot hits, {counters.cold_hits} cold "
            f"hits, {counters.spills} spills, {counters.evictions} evictions, "
            f"{counters.compactions} compactions, "
            f"{store.segment_count()} segments"
        )
        store.close()


def _finish_runtime(options: Optional[ExecutionOptions]) -> None:
    """Print cache stats and close the options' store, if one was opened."""
    if options is not None:
        _print_store_stats(options.store)
        if options.tracer is not None:
            sink = getattr(options.tracer, "sink", None)
            path = getattr(sink, "path", None)
            if path is not None:
                print(
                    f"trace {path}: summarize with `repro trace summarize {path}`"
                )


def _close_runtime(options: Optional[ExecutionOptions]) -> None:
    """Release the store and tracer unconditionally (error-path counterpart).

    Commands call this from ``finally`` so a failure anywhere between
    :func:`_runtime_options` opening the store and :func:`_finish_runtime`
    closing it cannot leak the sqlite connection or the trace file handle;
    ``ResultStore.close`` and ``Tracer.close`` are idempotent, so the
    success path (which already closed, after printing stats) is unaffected.
    """
    if options is not None and options.store is not None:
        options.store.close()
    if options is not None and options.tracer is not None:
        options.tracer.close()


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Distributed Learning Dynamics in Social Groups' "
            "(Celis, Krafft, Vishnoi; PODC 2017)"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run the finite-population dynamics on Bernoulli qualities"
    )
    simulate.add_argument(
        "--options",
        type=float,
        nargs="+",
        default=[0.8, 0.5, 0.5],
        help="option qualities eta_j (each in [0, 1])",
    )
    simulate.add_argument("--population", type=int, default=2000, help="group size N")
    simulate.add_argument("--horizon", type=int, default=300, help="number of steps T")
    simulate.add_argument("--beta", type=float, default=0.6, help="adoption probability on a good signal")
    simulate.add_argument("--mu", type=float, default=None, help="exploration rate (default: delta^2/6)")
    simulate.add_argument("--seed", type=int, default=0, help="random seed")
    simulate.add_argument("--replications", type=int, default=3, help="independent replications")
    simulate.add_argument("--infinite", action="store_true", help="also run the infinite-population dynamics")
    simulate.add_argument("--plot", action="store_true", help="print an ASCII plot of the best option's share")
    simulate.add_argument("--output", type=str, default=None, help="write the result table to this CSV path")

    run = subparsers.add_parser(
        "run",
        help="run many replications at once on the batched replicate-axis engine",
    )
    run.add_argument(
        "--options",
        type=float,
        nargs="+",
        default=[0.8, 0.5, 0.5],
        help="option qualities eta_j (each in [0, 1])",
    )
    run.add_argument("--population", type=int, default=2000, help="group size N")
    run.add_argument("--horizon", type=int, default=300, help="number of steps T")
    run.add_argument("--beta", type=float, default=0.6, help="adoption probability on a good signal")
    run.add_argument("--mu", type=float, default=None, help="exploration rate (default: delta^2/6)")
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--replications", type=int, default=100, help="independent replications R"
    )
    run.add_argument(
        "--engine",
        choices=("batched", "loop"),
        default="batched",
        help="batched replicate-axis engine (default) or the sequential per-seed loop",
    )
    run.add_argument("--output", type=str, default=None, help="write the summary table to this CSV path")

    bounds = subparsers.add_parser(
        "bounds", help="print every paper bound for a parameterisation"
    )
    bounds.add_argument("--num-options", type=int, required=True, help="number of options m")
    bounds.add_argument("--beta", type=float, required=True, help="adoption probability on a good signal")
    bounds.add_argument("--mu", type=float, default=None, help="exploration rate (default: delta^2/6)")
    bounds.add_argument("--population", type=int, default=None, help="group size N (optional)")
    bounds.add_argument("--output", type=str, default=None, help="write the bounds table to this CSV path")

    coupling = subparsers.add_parser(
        "coupling", help="run the Lemma 4.5 coupling and report measured vs bound ratios"
    )
    coupling.add_argument("--options", type=float, nargs="+", default=[0.8, 0.5])
    coupling.add_argument("--population", type=int, default=10_000, help="group size N")
    coupling.add_argument("--horizon", type=int, default=8, help="coupled steps")
    coupling.add_argument("--beta", type=float, default=0.6)
    coupling.add_argument("--seed", type=int, default=0)
    coupling.add_argument("--output", type=str, default=None)

    sweep = subparsers.add_parser(
        "sweep",
        help=(
            "sweep a (N x beta x mu) parameter grid on the fully batched "
            "engine and report regret per point"
        ),
    )
    sweep.add_argument("--options", type=float, nargs="+", default=[0.8, 0.5, 0.5])
    sweep.add_argument("--populations", type=int, nargs="+", default=[100, 1000, 10_000])
    sweep.add_argument("--horizon", type=int, default=300)
    sweep.add_argument(
        "--beta", type=float, default=0.6, help="adoption probability when --betas is not given"
    )
    sweep.add_argument(
        "--betas",
        type=float,
        nargs="+",
        default=None,
        help="sweep axis of adoption probabilities (overrides --beta)",
    )
    sweep.add_argument(
        "--mus",
        type=float,
        nargs="+",
        default=None,
        help="sweep axis of exploration rates (default: the theorem maximum per point)",
    )
    sweep.add_argument("--replications", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--engine",
        choices=("batched", "loop"),
        default="batched",
        help=(
            "run the whole grid as one (G*R, m) batched launch (default) or "
            "fall back to the per-point per-seed loop"
        ),
    )
    sweep.add_argument("--output", type=str, default=None)
    _add_engine_arguments(sweep)
    _add_runtime_arguments(sweep)

    network = subparsers.add_parser(
        "network",
        help=(
            "run the neighbourhood-restricted dynamics on a topology using "
            "the vectorised sparse engines"
        ),
    )
    network.add_argument("--options", type=float, nargs="+", default=[0.8, 0.5, 0.5])
    network.add_argument(
        "--topology",
        choices=(
            "complete",
            "ring",
            "grid",
            "star",
            "erdos_renyi",
            "barabasi_albert",
            "watts_strogatz",
        ),
        default="watts_strogatz",
        help="social graph family (random families are seeded by --graph-seed)",
    )
    network.add_argument("--size", type=int, default=1000, help="number of individuals N")
    network.add_argument("--horizon", type=int, default=300, help="number of steps T")
    network.add_argument("--beta", type=float, default=0.6, help="adoption probability on a good signal")
    network.add_argument("--mu", type=float, default=None, help="exploration rate (default: delta^2/6)")
    network.add_argument("--seed", type=int, default=0, help="master seed")
    network.add_argument("--graph-seed", type=int, default=0, help="seed for random topologies")
    network.add_argument("--replications", type=int, default=20, help="independent replications R")
    network.add_argument(
        "--engine",
        choices=NETWORK_ENGINES,
        default="batched",
        help=(
            "batched (R, N) sparse engine (default), per-seed vectorized "
            "sparse engine, or the per-agent reference loop"
        ),
    )
    network.add_argument(
        "--stats",
        action="store_true",
        help=(
            "also print the expensive topology statistics (spectral gap, "
            "diameter, clustering) — these are O(N^3)/O(N*E) graph "
            "computations, far slower than the simulation itself at large N"
        ),
    )
    network.add_argument("--output", type=str, default=None, help="write the summary table to this CSV path")
    _add_engine_arguments(network)
    _add_runtime_arguments(network)

    protocol = subparsers.add_parser(
        "protocol",
        help=(
            "run the message-passing distributed protocol under message "
            "loss and crash-stop failures using the vectorised engines"
        ),
    )
    protocol.add_argument(
        "--options", type=float, nargs="+", default=[0.9, 0.6, 0.6, 0.5]
    )
    protocol.add_argument("--nodes", type=int, default=1000, help="number of devices N")
    protocol.add_argument("--rounds", type=int, default=300, help="number of protocol rounds T")
    protocol.add_argument("--beta", type=float, default=0.6, help="adoption probability on a good signal")
    protocol.add_argument("--mu", type=float, default=None, help="exploration rate (default: delta^2/6)")
    protocol.add_argument("--loss", type=float, default=0.0, help="per-message drop probability")
    protocol.add_argument(
        "--delay",
        type=float,
        default=0.0,
        help="per-message one-round delay probability (loop engine only)",
    )
    protocol.add_argument(
        "--crash", type=float, default=0.0, help="per-round per-node crash probability"
    )
    protocol.add_argument(
        "--mass-crash-round",
        type=int,
        default=None,
        help="round of the one-off mass failure (default: rounds//2 when a fraction is given)",
    )
    protocol.add_argument(
        "--mass-crash-fraction",
        type=float,
        default=0.0,
        help="fraction of surviving nodes killed by the mass failure",
    )
    protocol.add_argument("--seed", type=int, default=0, help="master seed")
    protocol.add_argument("--replications", type=int, default=20, help="independent replications R")
    protocol.add_argument(
        "--engine",
        choices=PROTOCOL_ENGINES,
        default="batched",
        help=(
            "batched (R, N) engine (default), per-seed vectorized engine, "
            "or the per-message reference loop (required for --delay > 0)"
        ),
    )
    protocol.add_argument("--output", type=str, default=None, help="write the summary table to this CSV path")
    _add_engine_arguments(protocol)
    _add_runtime_arguments(protocol)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run the simulation-as-a-service API daemon (job submission, "
            "status polling, cache-first result serving)"
        ),
    )
    serve.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--store",
        type=str,
        default=None,
        help=(
            "shared content-addressed result store: computed tasks are "
            "flushed there and repeat jobs are served from cache (without "
            "one, every job recomputes)"
        ),
    )
    serve.add_argument(
        "--store-hot-mb",
        type=float,
        default=64.0,
        help=(
            "in-memory hot-tier budget for the shared store, in MiB "
            "(default 64); entries beyond it are served from the columnar "
            "cold tier"
        ),
    )
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="worker threads draining the job queue (default 2)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help=(
            "pending-job bound: submissions beyond it get HTTP 429 "
            "back-pressure (default 16)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker *processes* per job, as in the sweep/network/protocol "
            "--workers flag (default 1 = in-process execution)"
        ),
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    _add_trace_argument(serve)

    campaign = subparsers.add_parser(
        "campaign",
        help=(
            "run an experiment campaign (simulate -> analyse -> report "
            "compute DAG) on a pluggable backend"
        ),
    )
    campaign.add_argument(
        "--spec",
        type=str,
        required=True,
        help="campaign spec JSON file ('-' reads stdin); see the README's "
        "'Campaigns' guide for the format",
    )
    campaign.add_argument(
        "--backend",
        choices=CAMPAIGN_BACKENDS,
        default="inproc",
        help=(
            "execution backend: in-process (default), a local worker-process "
            "pool, or the socket coordinator awaiting `repro broker` "
            "processes — all bit-identical"
        ),
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend pool (default: all cores)",
    )
    campaign.add_argument(
        "--brokers",
        type=str,
        default="tcp://127.0.0.1:0",
        help=(
            "coordinator bind endpoint for --backend broker "
            "(tcp://host:port; port 0 picks a free port, printed at start "
            "for brokers to dial)"
        ),
    )
    campaign.add_argument(
        "--min-brokers",
        type=int,
        default=1,
        help="wait for this many connected brokers before dispatching work",
    )
    campaign.add_argument(
        "--broker-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for broker progress before giving up",
    )
    campaign.add_argument(
        "--store",
        type=str,
        default=None,
        help=(
            "sqlite result store: completed shards are flushed as they "
            "finish; a warm store short-circuits whole nodes, so a killed "
            "campaign resumes from cache"
        ),
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="fail fast unless --store already exists (continuing a killed run)",
    )
    campaign.add_argument(
        "--store-hot-mb",
        type=float,
        default=64.0,
        help="in-memory hot-tier budget of the result store in MiB (default 64)",
    )
    campaign.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the collated rows of every report node to this CSV path",
    )
    _add_trace_argument(campaign)

    broker = subparsers.add_parser(
        "broker",
        help=(
            "run a shard-execution broker that dials a campaign coordinator "
            "and executes simulate shards"
        ),
    )
    broker.add_argument(
        "--coordinator",
        type=str,
        required=True,
        help="coordinator endpoint to dial (tcp://host:port, retried while "
        "the coordinator boots)",
    )
    broker.add_argument(
        "--workers",
        type=int,
        default=1,
        help="local worker processes per shard (default 1 = in-process)",
    )
    broker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help=(
            "drop the connection after this many shards — a deterministic "
            "crash stand-in for fault-tolerance drills"
        ),
    )
    broker.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection (default 30)",
    )

    trace = subparsers.add_parser(
        "trace",
        help="inspect JSONL trace files recorded via --trace-out",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_commands.add_parser(
        "summarize",
        help=(
            "render a per-phase latency breakdown (count, total, mean, "
            "p50/p95, max, cpu) of a recorded trace"
        ),
    )
    summarize.add_argument(
        "path",
        type=str,
        help="JSONL trace file written via --trace-out / REPRO_TRACE_OUT",
    )

    return parser


def _finish(table: ResultTable, output: Optional[str]) -> None:
    # General float format: theorem thresholds can be astronomically large,
    # so fixed-point rendering would produce unreadable columns.
    print(table.to_text(float_format="{:.6g}"))
    if output:
        path = write_csv(table, output)
        print(f"\nwrote {len(table)} rows to {path}")


def _command_simulate(args: argparse.Namespace) -> int:
    qualities = list(args.options)
    table = ResultTable()
    best_series = None
    for replication in range(args.replications):
        env = BernoulliEnvironment(qualities, rng=args.seed + replication)
        trajectory = simulate_finite_population(
            env,
            population_size=args.population,
            horizon=args.horizon,
            beta=args.beta,
            mu=args.mu,
            rng=args.seed + 1000 + replication,
        )
        matrix = trajectory.popularity_matrix()
        table.add_row(
            {
                "process": "finite",
                "replication": replication,
                "regret": expected_regret(matrix, qualities),
                "best_option_share": best_option_share(matrix, int(np.argmax(qualities))),
            }
        )
        if best_series is None:
            best_series = {"finite": matrix[:, int(np.argmax(qualities))]}
        if args.infinite:
            env_inf = BernoulliEnvironment(qualities, rng=args.seed + 2000 + replication)
            inf_trajectory = simulate_infinite_population(
                env_inf, args.horizon, beta=args.beta, mu=args.mu
            )
            inf_matrix = inf_trajectory.distribution_matrix()
            table.add_row(
                {
                    "process": "infinite",
                    "replication": replication,
                    "regret": expected_regret(inf_matrix, qualities),
                    "best_option_share": best_option_share(
                        inf_matrix, int(np.argmax(qualities))
                    ),
                }
            )
            if replication == 0:
                best_series["infinite"] = inf_matrix[:, int(np.argmax(qualities))]
    _finish(table, args.output)
    if args.plot and best_series:
        print()
        print(
            ascii_line_plot(
                best_series, title="Best option share (replication 0)", width=70, height=12
            )
        )
    return 0


def _command_run(args: argparse.Namespace) -> int:
    qualities = list(args.options)
    best = int(np.argmax(qualities))

    if args.engine == "batched":

        @batched_replication
        def replication(seeds, parameters):
            # One generator, seeded by the full seed list, drives both the
            # reward draws and the batched dynamics — reproducible from the
            # config, vectorised across all replicates.
            generator = np.random.default_rng(seeds)
            env = BernoulliEnvironment(qualities, rng=generator)
            trajectory = simulate_batched_population(
                env,
                population_size=args.population,
                horizon=args.horizon,
                num_replicates=len(seeds),
                beta=args.beta,
                mu=args.mu,
                rng=generator,
            )
            regrets = trajectory.expected_regret(qualities)
            shares = trajectory.best_option_share(best)
            return [
                {"regret": float(regret), "best_option_share": float(share)}
                for regret, share in zip(regrets, shares)
            ]

    else:

        def replication(seed, parameters):
            env = BernoulliEnvironment(qualities, rng=seed)
            trajectory = simulate_finite_population(
                env,
                population_size=args.population,
                horizon=args.horizon,
                beta=args.beta,
                mu=args.mu,
                rng=seed + 1,
            )
            matrix = trajectory.popularity_matrix()
            return {
                "regret": expected_regret(matrix, qualities),
                "best_option_share": best_option_share(matrix, best),
            }

    config = ExperimentConfig(
        name=f"run-{args.engine}",
        parameters={
            "options": " ".join(str(quality) for quality in qualities),
            "N": args.population,
            "horizon": args.horizon,
            "beta": args.beta,
            "mu": args.mu if args.mu is not None else "default",
            "engine": args.engine,
        },
        replications=args.replications,
        seed=args.seed,
    )
    result = run_replications(config, replication)
    table = ResultTable()
    for name in result.metric_names():
        row = {"metric": name}
        row.update(result.summarize(name).as_dict())
        table.add_row(row)
    print(config.describe())
    _finish(table, args.output)
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    delta = TheoryBounds(
        num_options=args.num_options, beta=args.beta, mu=0.0, strict=False
    ).delta
    mu = args.mu if args.mu is not None else delta**2 / 6.0
    bounds = TheoryBounds(
        num_options=args.num_options,
        beta=args.beta,
        mu=mu,
        population_size=args.population,
        strict=False,
    )
    table = ResultTable(
        [{"quantity": key, "value": value} for key, value in bounds.summary().items()]
    )
    if args.population is not None:
        for key, value in bounds.population_size_condition().items():
            table.add_row({"quantity": f"thm4.4:{key}", "value": value})
    _finish(table, args.output)
    return 0


def _command_coupling(args: argparse.Namespace) -> int:
    env = BernoulliEnvironment(list(args.options), rng=args.seed)
    run = run_coupled_dynamics(
        env,
        population_size=args.population,
        horizon=args.horizon,
        beta=args.beta,
        rng=args.seed + 1,
    )
    table = ResultTable()
    for step in range(run.horizon):
        row = {
            "t": step + 1,
            "measured_ratio": float(run.ratio_series[step]),
        }
        if run.bound_series is not None:
            row["lemma_bound"] = float(run.bound_series[step])
            row["within_bound"] = bool(run.ratio_series[step] <= run.bound_series[step])
        table.add_row(row)
    _finish(table, args.output)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    try:
        request = sweep_request(
            options=args.options,
            populations=args.populations,
            horizon=args.horizon,
            beta=args.beta,
            betas=args.betas,
            mus=args.mus,
            replications=args.replications,
            seed=args.seed,
            engine=args.engine,
            backend=args.backend,
            dtype=args.dtype,
        )
    except RequestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    options = _runtime_options(args)
    try:
        if options is not None and args.engine == "batched":
            print(
                "note: with --workers/--store the batched sweep runs one grid "
                "point per task (the per-point batched convention) instead of "
                "the fused whole-grid launch, so sampled trajectories differ "
                "from a plain `repro sweep` at the same seed — statistically "
                "equivalent, and stable across worker counts and cache states",
                file=sys.stderr,
            )
        result = execute_request(request, options=options)
        print(
            result.description
            + (f" on {args.workers} workers" if args.workers > 1 else "")
        )
        _finish(result.table, args.output)
        _finish_runtime(options)
    finally:
        _close_runtime(options)
    return 0


def _command_network(args: argparse.Namespace) -> int:
    try:
        request = network_request(
            options=args.options,
            topology=args.topology,
            size=args.size,
            horizon=args.horizon,
            beta=args.beta,
            mu=args.mu,
            graph_seed=args.graph_seed,
            replications=args.replications,
            seed=args.seed,
            engine=args.engine,
            backend=args.backend,
            dtype=args.dtype,
        )
    except RequestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    prepared = prepare_request(request)
    network = build_network(prepared.config.parameters)
    # Only the cheap statistics by default: spectral gap / diameter /
    # clustering are O(N^3)-ish graph computations that would dwarf the
    # simulation this command exists to run fast (opt in with --stats).
    header = (
        f"topology={network.name} N={network.size} "
        f"avg_degree={network.average_degree():.2f} engine={args.engine}"
    )
    if args.stats:
        metrics = network.metrics()
        diameter = metrics["diameter"] if metrics["diameter"] is not None else "inf"
        header += (
            f" spectral_gap={metrics['spectral_gap']:.4f} "
            f"diameter={diameter} clustering={metrics['clustering']:.4f}"
        )
    print(header)
    options = _runtime_options(args)
    try:
        _warn_single_task(args)
        result = execute_request(request, prepared=prepared, options=options)
        print(result.description)
        _finish(result.table, args.output)
        _finish_runtime(options)
    finally:
        _close_runtime(options)
    return 0


def _command_protocol(args: argparse.Namespace) -> int:
    try:
        request = protocol_request(
            options=args.options,
            nodes=args.nodes,
            rounds=args.rounds,
            beta=args.beta,
            mu=args.mu,
            loss=args.loss,
            delay=args.delay,
            crash=args.crash,
            mass_crash_round=args.mass_crash_round,
            mass_crash_fraction=args.mass_crash_fraction,
            replications=args.replications,
            seed=args.seed,
            engine=args.engine,
            backend=args.backend,
            dtype=args.dtype,
        )
    except RequestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"nodes={args.nodes} loss={args.loss} delay={args.delay} "
        f"crash={args.crash} mass_crash_fraction={args.mass_crash_fraction} "
        f"engine={args.engine}"
    )
    options = _runtime_options(args)
    try:
        _warn_single_task(args)
        result = execute_request(request, options=options)
        print(result.description)
        _finish(result.table, args.output)
        _finish_runtime(options)
    finally:
        _close_runtime(options)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(
            f"error: --workers must be at least 1, got {args.workers}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if args.store_hot_mb <= 0:
        print(
            f"error: --store-hot-mb must be positive, got {args.store_hot_mb}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    store = (
        ResultStore(args.store, hot_budget_bytes=int(args.store_hot_mb * 2**20))
        if args.store
        else None
    )
    try:
        service = SimulationService(
            store,
            job_workers=args.job_workers,
            queue_capacity=args.queue_size,
            process_workers=args.workers,
            trace_out=args.trace_out or os.environ.get(TRACE_OUT_ENV),
        )
        server = SimulationDaemon((args.host, args.port), service, verbose=args.verbose)
    except (OSError, ValueError) as error:
        if store is not None:
            store.close()
        print(f"error: cannot start daemon: {error}", file=sys.stderr)
        return 2
    try:
        store_note = (
            f"store {store.path}"
            if store is not None
            else "no result store (every job recomputes)"
        )
        print(f"repro serve listening on {server.url} — {store_note}", flush=True)
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.close()
        if store is not None:
            store.close()
    return 0


def _load_campaign_spec(source: str) -> Any:
    """Read the campaign spec JSON from a file path or stdin (``-``)."""
    try:
        if source == "-":
            return json.load(sys.stdin)
        with open(source, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as error:
        print(f"error: cannot read campaign spec: {error}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as error:
        print(f"error: campaign spec is not valid JSON: {error}", file=sys.stderr)
        raise SystemExit(2)


def _command_campaign(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be at least 1, got {args.workers}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    try:
        campaign = campaign_from_spec(_load_campaign_spec(args.spec))
    except CampaignError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = _open_store(args)
    tracer = _open_tracer(args)
    backend = None
    try:
        backend = make_backend(
            args.backend,
            workers=args.workers,
            brokers=args.brokers,
            min_brokers=args.min_brokers,
            timeout=args.broker_timeout,
        )
        if args.backend == "broker":
            print(
                f"coordinator listening on {backend.address} — connect "
                f"brokers with `repro broker --coordinator {backend.address}`",
                flush=True,
            )
        print(
            f"campaign {campaign.name}: {len(campaign)} node(s) on "
            f"{args.backend} backend"
        )
        total = len(campaign)
        progress = {"done": 0}

        def on_node(node, node_result):
            progress["done"] += 1
            print(
                f"[{progress['done']}/{total}] {node.kind} {node.id}: "
                f"{node_result.description}"
            )

        campaign_result = run_campaign(
            campaign, backend=backend, store=store, on_node=on_node, tracer=tracer
        )
        for report in campaign_result.reports():
            print()
            print(report.text)
        if args.output:
            table = ResultTable()
            for report in campaign_result.reports():
                for row in report.rows:
                    table.add_row({"report": report.node_id, **row})
            if len(table):
                path = write_csv(table, args.output)
                print(f"\nwrote {len(table)} rows to {path}")
            else:
                print("\nno report rows to write", file=sys.stderr)
        _print_store_stats(store)
        if tracer is not None:
            print(
                f"trace {tracer.sink.path}: summarize with "
                f"`repro trace summarize {tracer.sink.path}`"
            )
    except (BrokerError, CampaignError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if backend is not None and hasattr(backend, "close"):
            backend.close()
        if store is not None:
            store.close()
        if tracer is not None:
            tracer.close()
    return 0


def _command_broker(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(
            f"error: --workers must be at least 1, got {args.workers}",
            file=sys.stderr,
        )
        raise SystemExit(2)

    def on_shard(count: int, tasks: int) -> None:
        print(f"shard {count}: {tasks} task(s) done", flush=True)

    print(f"broker dialling {args.coordinator} ({args.workers} worker(s))")
    try:
        executed = run_broker(
            args.coordinator,
            workers=args.workers,
            max_shards=args.max_shards,
            connect_timeout=args.connect_timeout,
            on_shard=on_shard,
        )
    except (BrokerError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("broker interrupted", file=sys.stderr)
        return 130
    print(f"broker done: {executed} shard(s) executed")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    try:
        print(summarize_trace_file(args.path))
    except OSError as error:
        print(f"error: cannot read trace file: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


_COMMANDS = {
    "simulate": _command_simulate,
    "run": _command_run,
    "bounds": _command_bounds,
    "coupling": _command_coupling,
    "sweep": _command_sweep,
    "network": _command_network,
    "protocol": _command_protocol,
    "serve": _command_serve,
    "campaign": _command_campaign,
    "broker": _command_broker,
    "trace": _command_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
