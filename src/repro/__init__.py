"""repro — reproduction of *A Distributed Learning Dynamics in Social Groups*.

Celis, Krafft, Vishnoi (PODC 2017; arXiv:1705.03414).

The package implements the paper's two-stage distributed social learning
dynamics in finite populations, its infinite-population limit (a stochastic
multiplicative-weights process), the coupling between the two, regret
accounting, every bound stated in the paper's theorems, and the surrounding
substrates needed to evaluate them: reward environments, baseline learners,
social-network-restricted sampling and a message-passing distributed-protocol
simulation.

Quickstart
----------
>>> from repro import BernoulliEnvironment, simulate_finite_population, expected_regret
>>> env = BernoulliEnvironment([0.8, 0.5, 0.5], rng=0)
>>> trajectory = simulate_finite_population(env, population_size=2000, horizon=300,
...                                          beta=0.6, rng=1)
>>> regret = expected_regret(trajectory.popularity_matrix(), env.qualities)

See ``examples/quickstart.py`` for a narrated version and ``EXPERIMENTS.md``
for the experiment-by-experiment reproduction of the paper's results.
"""

from repro.core import (
    AdoptionRule,
    AgentBasedDynamics,
    AgentType,
    AlwaysAdoptRule,
    BatchedDynamics,
    BatchedPopulationState,
    BatchedTrajectory,
    CoupledRun,
    EpochSchedule,
    HeterogeneousPopulationDynamics,
    FinitePopulationDynamics,
    GeneralAdoptionRule,
    InfinitePopulationDynamics,
    MixtureSampling,
    PopularityOnlySampling,
    PopulationState,
    RegretAccumulator,
    RowwiseAdoptionRule,
    SamplingRule,
    SymmetricAdoptionRule,
    TheoryBounds,
    Trajectory,
    UniformSampling,
    average_regret,
    best_option_share,
    empirical_regret,
    optimal_beta,
    run_coupled_dynamics,
    simulate_batched_population,
    simulate_finite_population,
    simulate_infinite_population,
)
from repro.core.regret import expected_regret, expected_step_rewards, step_rewards
from repro.environments import (
    BernoulliEnvironment,
    ContinuousRewardEnvironment,
    CorrelatedOptionsEnvironment,
    EllisonFudenbergEnvironment,
    ExactlyOneGoodEnvironment,
    PiecewiseConstantDriftEnvironment,
    RandomWalkDriftEnvironment,
    RecordedRewardSequence,
    RewardEnvironment,
    record_rewards,
)
from repro.agents import Agent, Population

__version__ = "1.0.0"

__all__ = [
    # core dynamics
    "FinitePopulationDynamics",
    "AgentBasedDynamics",
    "BatchedDynamics",
    "BatchedPopulationState",
    "BatchedTrajectory",
    "simulate_batched_population",
    "AgentType",
    "HeterogeneousPopulationDynamics",
    "InfinitePopulationDynamics",
    "simulate_finite_population",
    "simulate_infinite_population",
    "run_coupled_dynamics",
    "CoupledRun",
    # rules and state
    "AdoptionRule",
    "SymmetricAdoptionRule",
    "GeneralAdoptionRule",
    "RowwiseAdoptionRule",
    "AlwaysAdoptRule",
    "SamplingRule",
    "MixtureSampling",
    "UniformSampling",
    "PopularityOnlySampling",
    "PopulationState",
    "Trajectory",
    "EpochSchedule",
    # regret and theory
    "RegretAccumulator",
    "average_regret",
    "best_option_share",
    "empirical_regret",
    "expected_regret",
    "expected_step_rewards",
    "step_rewards",
    "TheoryBounds",
    "optimal_beta",
    # environments
    "RewardEnvironment",
    "BernoulliEnvironment",
    "ContinuousRewardEnvironment",
    "EllisonFudenbergEnvironment",
    "PiecewiseConstantDriftEnvironment",
    "RandomWalkDriftEnvironment",
    "CorrelatedOptionsEnvironment",
    "ExactlyOneGoodEnvironment",
    "RecordedRewardSequence",
    "record_rewards",
    # agents
    "Agent",
    "Population",
    "__version__",
]
