"""A lossy, delaying transport layer for the protocol simulation."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.distributed.messages import Message
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative_int, check_probability


@dataclass
class TransportStats:
    """Counters describing what happened to messages in flight."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    delayed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dict for reporting."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "delayed": self.delayed,
        }


class LossyTransport:
    """Delivers messages with independent loss and (optional) one-round delay.

    Each submitted message is dropped with probability ``loss_rate``;
    surviving messages are delivered in the round they were sent with
    probability ``1 - delay_rate`` and one round later otherwise.  This is a
    deliberately simple model — enough to study how the protocol's regret
    degrades with unreliable communication (experiment E10) without modelling
    a full network stack.

    Parameters
    ----------
    loss_rate:
        Probability that a message is silently dropped.
    delay_rate:
        Probability that a non-dropped message arrives one round late.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        loss_rate: float = 0.0,
        delay_rate: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        self._loss_rate = check_probability(loss_rate, "loss_rate")
        self._delay_rate = check_probability(delay_rate, "delay_rate")
        self._rng = ensure_rng(rng)
        self._mailboxes: Dict[int, List[Message]] = defaultdict(list)
        self._stats = TransportStats()

    @property
    def loss_rate(self) -> float:
        """Per-message drop probability."""
        return self._loss_rate

    @property
    def delay_rate(self) -> float:
        """Per-message probability of one-round delay."""
        return self._delay_rate

    @property
    def stats(self) -> TransportStats:
        """Delivery counters accumulated so far."""
        return self._stats

    def send(self, message: Message) -> None:
        """Submit a message for delivery."""
        self._stats.sent += 1
        if self._rng.random() < self._loss_rate:
            self._stats.dropped += 1
            return
        delivery_round = message.round_number
        if self._rng.random() < self._delay_rate:
            delivery_round += 1
            self._stats.delayed += 1
        self._mailboxes[delivery_round].append(message)

    def deliver(self, round_number: int) -> List[Message]:
        """Return (and clear) all messages due for delivery in ``round_number``."""
        check_non_negative_int(round_number, "round_number")
        messages = self._mailboxes.pop(round_number, [])
        self._stats.delivered += len(messages)
        return messages

    def pending(self) -> int:
        """Number of messages still queued for future rounds."""
        return sum(len(messages) for messages in self._mailboxes.values())
