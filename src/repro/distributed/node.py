"""A protocol node with O(1) memory."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adoption import AdoptionRule
from repro.distributed.messages import ChoiceQuery, ChoiceReply
from repro.utils.validation import check_non_negative_int, check_positive_int


class ProtocolNode:
    """One low-power device running the distributed learning protocol.

    The node's entire state is: its id, its adoption parameters, its current
    option (or ``None``), the option it is considering this round, and a
    crashed flag.  In particular it stores **no weight vector and no history**
    — the point of the paper's "distributed MWU without memory" observation.

    Parameters
    ----------
    node_id:
        Identifier in ``0..N-1``.
    num_options:
        Number of options ``m``.
    adoption_rule:
        The node's ``f_i``.
    initial_option:
        Option held before the first round (``None`` = sitting out).
    """

    __slots__ = (
        "node_id",
        "num_options",
        "adoption_rule",
        "current_option",
        "considered_option",
        "crashed",
    )

    def __init__(
        self,
        node_id: int,
        num_options: int,
        adoption_rule: AdoptionRule,
        initial_option: Optional[int] = None,
    ) -> None:
        self.node_id = check_non_negative_int(node_id, "node_id")
        self.num_options = check_positive_int(num_options, "num_options")
        if not isinstance(adoption_rule, AdoptionRule):
            raise TypeError("adoption_rule must be an AdoptionRule")
        if initial_option is not None:
            initial_option = check_non_negative_int(initial_option, "initial_option")
            if initial_option >= num_options:
                raise ValueError("initial_option out of range")
        self.adoption_rule = adoption_rule
        self.current_option: Optional[int] = initial_option
        self.considered_option: Optional[int] = None
        self.crashed = False

    # -------------------------------------------------------------- handlers
    def make_query(self, peer: int, round_number: int) -> ChoiceQuery:
        """Build the round's query to a uniformly chosen peer."""
        return ChoiceQuery(
            sender=self.node_id, recipient=peer, round_number=round_number
        )

    def handle_query(self, query: ChoiceQuery) -> Optional[ChoiceReply]:
        """Answer a peer's query with this node's current option (if alive)."""
        if self.crashed:
            return None
        return ChoiceReply(
            sender=self.node_id,
            recipient=query.sender,
            round_number=query.round_number,
            option=self.current_option,
        )

    def handle_reply(self, reply: ChoiceReply, rng: np.random.Generator) -> bool:
        """Record the considered option from a peer's reply.

        Returns ``True`` when the reply carried an option.  A reply carrying
        ``None`` (the peer was sitting out) leaves the node without a
        considered option; the protocol driver then either retries with
        another peer or falls back to uniform exploration.
        """
        if self.crashed:
            return False
        if reply.option is None:
            return False
        self.considered_option = int(reply.option)
        return True

    def explore(self, rng: np.random.Generator) -> None:
        """Consider a uniformly random option (exploration, or missing reply)."""
        if self.crashed:
            return
        self.considered_option = int(rng.integers(self.num_options))

    def adopt_step(self, signal: int, rng: np.random.Generator) -> None:
        """Run stage (2) on the considered option's fresh signal and clear it."""
        if self.crashed or self.considered_option is None:
            return
        if signal not in (0, 1):
            raise ValueError(f"signal must be 0 or 1, got {signal}")
        probability = self.adoption_rule.adopt_probability(signal)
        if rng.random() < probability:
            self.current_option = self.considered_option
        else:
            self.current_option = None
        self.considered_option = None

    def crash(self) -> None:
        """Permanently stop the node (it no longer answers queries or updates)."""
        self.crashed = True
        self.considered_option = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "crashed" if self.crashed else f"option={self.current_option}"
        return f"ProtocolNode(id={self.node_id}, {status})"
