"""Message types exchanged by the distributed protocol.

The protocol needs only two message types per round and per node — a request
for a peer's current choice and the reply — underscoring the paper's point
about how little communication the dynamics requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.validation import check_non_negative_int


@dataclass(frozen=True)
class Message:
    """Base class for protocol messages.

    Attributes
    ----------
    sender:
        Node id of the sender.
    recipient:
        Node id of the recipient.
    round_number:
        Protocol round in which the message was sent.
    """

    sender: int
    recipient: int
    round_number: int

    def __post_init__(self) -> None:
        check_non_negative_int(self.sender, "sender")
        check_non_negative_int(self.recipient, "recipient")
        check_non_negative_int(self.round_number, "round_number")


@dataclass(frozen=True)
class ChoiceQuery(Message):
    """"Which option did you hold last round?" — sent to one random peer."""


@dataclass(frozen=True)
class ChoiceReply(Message):
    """Reply carrying the sender's option from the previous round.

    ``option`` is ``None`` when the replying node was sitting out, in which
    case the querying node falls back to uniform exploration (the same
    convention the shared-memory simulators use).
    """

    option: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.option is not None:
            check_non_negative_int(self.option, "option")
