"""Message-passing simulation of the dynamics as a distributed protocol.

The introduction of the paper observes that the learning dynamics "can inform
novel, low-memory, low-communication, distributed implementations of the MWU
algorithm in the stochastic setting; perhaps appropriate for low-power devices
in distributed settings such as sensor networks or the internet-of-things."

This subpackage makes that interpretation concrete.  Each group member is a
:class:`ProtocolNode` holding O(1) state (its current option and its
``(alpha, beta)`` parameters).  A round of the protocol exchanges two messages
per node over a :class:`LossyTransport` (which can drop or delay messages) —
a ``ChoiceQuery`` to one uniformly chosen peer and the corresponding
``ChoiceReply`` — after which the node locally observes the fresh quality
signal of the option it is considering and runs the adopt step.  A
:class:`CrashFailureModel` can permanently crash a fraction of nodes at chosen
rounds.

:class:`DistributedLearningProtocol` drives the rounds, accounts for the group
regret with the same definitions as the core library, and is the engine behind
experiment E10 (robustness to message loss and crashes) and the
``sensor_network.py`` example.
"""

from repro.distributed.messages import ChoiceQuery, ChoiceReply, Message
from repro.distributed.transport import LossyTransport, TransportStats
from repro.distributed.node import ProtocolNode
from repro.distributed.failures import CrashFailureModel, NoFailures
from repro.distributed.protocol import DistributedLearningProtocol, ProtocolResult

__all__ = [
    "Message",
    "ChoiceQuery",
    "ChoiceReply",
    "LossyTransport",
    "TransportStats",
    "ProtocolNode",
    "CrashFailureModel",
    "NoFailures",
    "DistributedLearningProtocol",
    "ProtocolResult",
]
