"""Message-passing simulation of the dynamics as a distributed protocol.

The introduction of the paper observes that the learning dynamics "can inform
novel, low-memory, low-communication, distributed implementations of the MWU
algorithm in the stochastic setting; perhaps appropriate for low-power devices
in distributed settings such as sensor networks or the internet-of-things."

This subpackage makes that interpretation concrete.  Each group member is a
:class:`ProtocolNode` holding O(1) state (its current option and its
``(alpha, beta)`` parameters).  A round of the protocol exchanges two messages
per node over a :class:`LossyTransport` (which can drop or delay messages) —
a ``ChoiceQuery`` to one uniformly chosen peer and the corresponding
``ChoiceReply`` — after which the node locally observes the fresh quality
signal of the option it is considering and runs the adopt step.  A
:class:`CrashFailureModel` can permanently crash a fraction of nodes at chosen
rounds.

Three engines simulate the protocol's round law:

* :class:`DistributedLearningProtocol` — the explicit message-passing loop
  (one Python object per node and per message); the only engine that models
  per-message *delay*;
* :class:`VectorizedProtocol` — one round for all ``N`` alive nodes as array
  operations (uniform peer sampling as one integer draw, query/reply loss as
  Bernoulli masks, crash-stop failures as a boolean alive mask); and
* :class:`BatchedProtocol` — ``R`` replicates advancing as ``(R, N)``
  choice/alive matrices per round, so a loss-rate x crash-fraction grid
  collapses into a few launches.

The single-replicate engines share :class:`ProtocolBase` (regret accounting,
round bookkeeping, the :class:`ProtocolResult` they both return);
:class:`BatchedProtocol` stands alone and returns a
:class:`BatchedProtocolResult` with per-replicate ``(R,)`` metrics.

The loop engine is the reference behind experiment E10 cross-validation; the
vectorised engines power the E10 benchmark and the ``sensor_network.py``
example at scales the loop cannot reach.
"""

from repro.distributed.messages import ChoiceQuery, ChoiceReply, Message
from repro.distributed.transport import LossyTransport, TransportStats
from repro.distributed.node import ProtocolNode
from repro.distributed.failures import CrashFailureModel, FailureModel, NoFailures
from repro.distributed.protocol import (
    DistributedLearningProtocol,
    ProtocolBase,
    ProtocolResult,
)
from repro.distributed.vectorized import (
    BatchedProtocol,
    BatchedProtocolResult,
    VectorizedProtocol,
)

__all__ = [
    "Message",
    "ChoiceQuery",
    "ChoiceReply",
    "LossyTransport",
    "TransportStats",
    "ProtocolNode",
    "CrashFailureModel",
    "FailureModel",
    "NoFailures",
    "ProtocolBase",
    "DistributedLearningProtocol",
    "ProtocolResult",
    "VectorizedProtocol",
    "BatchedProtocol",
    "BatchedProtocolResult",
]
