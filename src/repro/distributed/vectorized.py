"""Vectorised engines for the distributed-protocol simulation.

The message-passing loop (:class:`~repro.distributed.protocol.DistributedLearningProtocol`)
advances one node and one :class:`~repro.distributed.messages.Message` object
at a time in Python, which makes the lossy-round experiments (E10) orders of
magnitude slower than every other engine in this repository.  The two engines
here simulate the *same round law* as whole-population array operations:

* :class:`VectorizedProtocol` simulates one round for all ``N`` alive nodes
  at once — uniform peer sampling is one integer draw per querying node
  (rank-shifted to exclude self), query and reply loss are independent
  Bernoulli masks over the peer vector, crash-stop failures are a boolean
  ``alive`` mask threaded through every step, and the adopt step is one
  broadcast thinning via :meth:`~repro.core.adoption.AdoptionRule.adopt_probabilities`.
* :class:`BatchedProtocol` adds a replicate axis: ``R`` independent fleets
  advance as ``(R, N)`` choice/alive matrices per round, recording
  :class:`~repro.core.batched.BatchedPopulationState` snapshots into a
  :class:`~repro.core.batched.BatchedTrajectory` — so a loss-rate x
  crash-fraction grid collapses into a few launches.

Per round (identical to the loop's law):

1. crash injection;
2. every alive node explores with probability ``mu`` (always, when it is the
   only survivor); the rest query one uniformly random alive peer;
3. a query is dropped with probability ``loss_rate``; a delivered query is
   answered with the peer's previous-round option and the reply is dropped
   independently with probability ``loss_rate``; a node whose exchange was
   lost or whose peer was sitting out retries with a fresh random peer, up to
   ``max_query_attempts`` sub-rounds;
4. nodes that never heard back from a committed peer fall back to uniform
   exploration;
5. every alive node observes its considered option's fresh signal and runs
   the adopt step.

What the vectorised engines do **not** model is per-message *delay*
(``delay_rate`` of :class:`~repro.distributed.transport.LossyTransport`):
a delayed message changes which round a reply lands in, which is inherently
sequential bookkeeping — use the loop engine when delay matters.  Under pure
loss the delivered-message law is identical, so the engines are
distributionally equivalent to the loop (KS / chi-squared cross-validated in
``tests/integration/test_cross_validation.py``, with bit-exact golden
fixtures pinning each engine separately).  The engines consume the random
stream differently from the loop, so equal seeds give different trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.backends import (
    BackendLike,
    PrecisionLike,
    get_namespace,
    resolve_precision,
)
from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.batched import BatchedPopulationState, BatchedTrajectory
from repro.distributed.failures import FailureModel, NoFailures
from repro.distributed.protocol import ProtocolBase
from repro.distributed.transport import TransportStats
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import (
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


def _lossy_exchange(
    rng: np.random.Generator,
    loss_rate: float,
    peer_choices: np.ndarray,
    stats: TransportStats,
) -> np.ndarray:
    """One retry sub-round's message law, shared by both vectorised engines.

    Draws the independent Bernoulli loss masks for the queries and the
    replies of the still-waiting nodes (``peer_choices`` holds each waiting
    node's sampled peer's current option), updates the transport counters —
    every delivered query is answered, so replies-sent equals
    queries-delivered — and returns the satisfied mask: a reply delivered
    from a *committed* peer.
    """
    num_waiting = peer_choices.size
    query_arrives = rng.random(num_waiting) >= loss_rate
    reply_arrives = rng.random(num_waiting) >= loss_rate
    replies_sent = int(query_arrives.sum())
    reply_delivered = query_arrives & reply_arrives
    stats.sent += num_waiting + replies_sent
    stats.delivered += replies_sent + int(reply_delivered.sum())
    stats.dropped += (num_waiting - replies_sent) + int(
        (query_arrives & ~reply_arrives).sum()
    )
    return reply_delivered & (peer_choices >= 0)


class VectorizedProtocol(ProtocolBase):
    """Array-ops simulator of the protocol over ``N`` nodes (loss, no delay).

    Drop-in for :class:`~repro.distributed.protocol.DistributedLearningProtocol`
    on lossy-but-undelayed networks: same constructor knobs (with the
    transport object replaced by a plain ``loss_rate``), same
    :class:`~repro.distributed.protocol.ProtocolResult`, same regret
    accounting — the round itself runs in ``O(N)`` NumPy work instead of
    ``O(N)`` Python message objects.

    Parameters
    ----------
    num_nodes:
        Number of devices ``N``.
    num_options:
        Number of options ``m``.
    adoption_rule:
        Shared adoption rule; defaults to the paper's symmetric rule with
        ``beta = 0.6``.
    exploration_rate:
        The probability ``mu`` of deliberate uniform exploration.
    loss_rate:
        Probability that each query and each reply is independently dropped
        (the ``loss_rate`` of the loop engine's transport).  Per-message
        delay is not modelled — use the loop engine for ``delay_rate > 0``.
    failure_model:
        Crash injection model (same API as the loop engine); defaults to no
        failures.
    max_query_attempts:
        How many times a node re-queries with a fresh random peer before
        falling back to uniform exploration.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        num_nodes: int,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        loss_rate: float = 0.0,
        failure_model: Optional[FailureModel] = None,
        max_query_attempts: int = 6,
        rng: RngLike = None,
    ) -> None:
        num_nodes = check_positive_int(num_nodes, "num_nodes")
        super().__init__(num_options, exploration_rate, rng)
        self._num_nodes = num_nodes
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        self._loss_rate = check_probability(loss_rate, "loss_rate")
        self._failure_model = failure_model or NoFailures()
        self._max_query_attempts = check_positive_int(
            max_query_attempts, "max_query_attempts"
        )
        self._stats = TransportStats()
        # Every node starts committed to a uniformly random option, exactly
        # like the loop engine's node initialisation.
        self._choices = self._rng.integers(num_options, size=num_nodes).astype(
            np.int64
        )
        self._alive = np.ones(num_nodes, dtype=bool)

    # ------------------------------------------------------------ properties
    @property
    def num_nodes(self) -> int:
        """Number of devices ``N``."""
        return self._num_nodes

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The shared adoption rule."""
        return self._adoption_rule

    @property
    def loss_rate(self) -> float:
        """Per-message drop probability."""
        return self._loss_rate

    def choices(self) -> np.ndarray:
        """Per-node current options (-1 means sitting out); copy.

        Crashed nodes retain their last committed option here — mask with
        :meth:`alive` (as :meth:`popularity` does) before counting.
        """
        return self._choices.copy()

    def alive(self) -> np.ndarray:
        """Boolean alive mask over the nodes; copy."""
        return self._alive.copy()

    def num_alive(self) -> int:
        """Number of nodes that have not crashed."""
        return int(self._alive.sum())

    def transport_stats(self) -> Dict[str, int]:
        """Message counters (``delayed`` is always 0 — delay is not modelled)."""
        return self._stats.as_dict()

    def popularity(self) -> np.ndarray:
        """Popularity among alive committed nodes (uniform when none committed)."""
        committed = self._choices[self._alive & (self._choices >= 0)]
        counts = np.bincount(committed, minlength=self._num_options)
        total = counts.sum()
        if total == 0:
            return np.full(self._num_options, 1.0 / self._num_options)
        return counts / total

    # ----------------------------------------------------------------- round
    def run_round(self, rewards: np.ndarray) -> None:
        """Execute one protocol round with the given quality signals."""
        rewards = self._validated_rewards(rewards)
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        # 1. Crash injection (the failure model keeps the loop engine's API).
        alive_ids = np.flatnonzero(self._alive)
        crashed = self._failure_model.crashes_for_round(
            self._round, alive_ids.tolist()
        )
        if crashed:
            self._alive[np.asarray(crashed, dtype=np.int64)] = False
            alive_ids = np.flatnonzero(self._alive)
        num_alive = alive_ids.size
        if num_alive == 0:
            self._round += 1
            return

        # 2. Sampling stage: a mu-fraction explores (everyone, when a single
        #    survivor has no peer to query); the rest query random peers.
        explore = self._rng.random(num_alive) < self._mu
        if num_alive == 1:
            explore[:] = True
        considered = np.full(self._num_nodes, -1, dtype=np.int64)
        explorers = alive_ids[explore]
        considered[explorers] = self._rng.integers(
            self._num_options, size=explorers.size
        )
        waiting = alive_ids[~explore]
        # Rank of each waiting node inside the sorted alive_ids vector, used
        # to exclude self from its peer draw below.
        waiting_rank = np.flatnonzero(~explore)

        for _ in range(self._max_query_attempts):
            if waiting.size == 0:
                break
            num_waiting = waiting.size
            # 3a. One uniform integer draw per query: an index into the
            #     alive vector with self excluded by shifting draws at or
            #     above the node's own rank up by one.
            draws = self._rng.integers(num_alive - 1, size=num_waiting)
            peers = alive_ids[draws + (draws >= waiting_rank)]
            # 3b/3c. Loss masks and stats via the shared sub-round law; a
            #        delivered reply from a committed peer satisfies the
            #        node, everyone else (lost exchange, sitting-out peer)
            #        retries.
            satisfied = _lossy_exchange(
                self._rng, self._loss_rate, self._choices[peers], self._stats
            )
            considered[waiting[satisfied]] = self._choices[peers[satisfied]]
            waiting = waiting[~satisfied]
            waiting_rank = waiting_rank[~satisfied]

        # 4. Fallback exploration for nodes that never heard back.
        if waiting.size:
            considered[waiting] = self._rng.integers(
                self._num_options, size=waiting.size
            )
            self._fallback_explorations += int(waiting.size)

        # 5. Adoption stage: one broadcast thinning on the fresh signals.
        active = considered >= 0
        adopt_probability = self._adoption_rule.adopt_probabilities(
            rewards[considered[active]]
        )
        adopted = self._rng.random(int(active.sum())) < adopt_probability
        self._choices[active] = np.where(adopted, considered[active], -1)
        self._round += 1


@dataclass
class BatchedProtocolResult:
    """Outcome of a full :class:`BatchedProtocol` run.

    Attributes
    ----------
    trajectory:
        The recorded :class:`~repro.core.batched.BatchedTrajectory` —
        pre-round popularities and per-round rewards with shapes ``(T, R, m)``
        and states whose counts are the per-replicate alive-committed
        histograms.
    alive_matrix:
        ``(T, R)`` number of alive nodes at the start of each round.
    transport_stats:
        Message counters aggregated over all replicates.
    fallback_explorations:
        Node-rounds (summed over replicates) that fell back to uniform
        exploration.
    best_option:
        Index of the environment's best option.
    best_quality:
        ``eta_1``, the benchmark quality for regret.
    """

    trajectory: BatchedTrajectory
    alive_matrix: np.ndarray
    transport_stats: Dict[str, int]
    fallback_explorations: int
    best_option: int
    best_quality: float

    @property
    def rounds(self) -> int:
        """Number of protocol rounds executed."""
        return self.trajectory.horizon

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R``."""
        return self.trajectory.num_replicates

    def regret(self) -> np.ndarray:
        """Per-replicate realised average regret, shape ``(R,)``.

        Same definition as :attr:`~repro.distributed.protocol.ProtocolResult.regret`:
        ``eta_1 - (1/T) sum_t <Q^{t-1}, R^t>`` with realised rewards.
        """
        return self.trajectory.empirical_regret(self.best_quality)

    def best_option_share(self) -> np.ndarray:
        """Per-replicate average pre-round popularity of the best option, shape ``(R,)``."""
        return self.trajectory.best_option_share(self.best_option)


class BatchedProtocol:
    """Replicate-axis vectorised simulator of the distributed protocol.

    Advances ``R`` statistically independent fleets in lock-step as
    ``(R, N)`` choice and alive matrices: per round, one ``(R, N)`` explore
    draw, then — over the compressed set of still-waiting (replicate, node)
    pairs — a rank-shifted uniform peer draw and two Bernoulli loss masks
    per retry sub-round, and finally one broadcast adoption thinning.  All
    replicates share one generator, so a batch is reproducible from a single
    seed but individual replicates are not independently re-runnable (same
    contract as :class:`~repro.core.batched.BatchedDynamics`).

    Crash-stop failures mirror
    :class:`~repro.distributed.failures.CrashFailureModel` with the
    replicate axis built in: an independent per-round crash coin per alive
    node, plus an optional one-off mass failure killing a fraction of each
    replicate's surviving nodes at a scheduled round.

    Parameters
    ----------
    num_nodes:
        Number of devices ``N`` per replicate.
    num_options:
        Number of options ``m``.
    num_replicates:
        Number of independent replicates ``R``.
    adoption_rule:
        Shared adoption rule; defaults to the symmetric rule with ``beta = 0.6``.
    exploration_rate:
        The probability ``mu`` of deliberate uniform exploration.
    loss_rate:
        Per-message drop probability (queries and replies independently).
    per_round_crash_probability:
        Probability that each alive node crashes at the start of any round.
    mass_failure_round:
        Round at which a mass failure occurs (``None`` disables it).
    mass_failure_fraction:
        Fraction of each replicate's currently-alive nodes killed then.
    max_query_attempts:
        Re-query attempts before falling back to uniform exploration.
    rng:
        Seed or generator.
    backend:
        Array backend name or instance (default NumPy); see
        :func:`repro.backends.get_namespace`.  Accepted for interface
        symmetry with the other batched engines: the protocol's compressed
        retry bookkeeping (array-``high`` integer draws over shrinking index
        sets) is inherently host-side, so rounds always execute through the
        host NumPy generator regardless of the backend chosen.
    precision:
        Storage precision (default float64/int64).  Random draws always run
        in float64, so the stored-state dtype does not perturb the stream.
    """

    def __init__(
        self,
        num_nodes: int,
        num_options: int,
        num_replicates: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        loss_rate: float = 0.0,
        per_round_crash_probability: float = 0.0,
        mass_failure_round: Optional[int] = None,
        mass_failure_fraction: float = 0.0,
        max_query_attempts: int = 6,
        rng: RngLike = None,
        backend: BackendLike = None,
        precision: PrecisionLike = None,
    ) -> None:
        self._num_nodes = check_positive_int(num_nodes, "num_nodes")
        self._num_options = check_positive_int(num_options, "num_options")
        self._num_replicates = check_positive_int(num_replicates, "num_replicates")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        self._mu = check_probability(exploration_rate, "exploration_rate")
        self._loss_rate = check_probability(loss_rate, "loss_rate")
        self._per_round_crash = check_probability(
            per_round_crash_probability, "per_round_crash_probability"
        )
        if mass_failure_round is not None:
            mass_failure_round = check_non_negative_int(
                mass_failure_round, "mass_failure_round"
            )
        self._mass_failure_round = mass_failure_round
        self._mass_failure_fraction = check_probability(
            mass_failure_fraction, "mass_failure_fraction"
        )
        self._max_query_attempts = check_positive_int(
            max_query_attempts, "max_query_attempts"
        )
        self._backend = get_namespace(backend)
        self._precision = resolve_precision(precision)
        self._precision.check_count_value(int(num_nodes), "num_nodes")
        self._rng = ensure_rng(rng)
        self._round = 0
        self._fallback_explorations = 0
        self._stats = TransportStats()
        shape = (num_replicates, num_nodes)
        self._choices = self._rng.integers(num_options, size=shape).astype(
            self._precision.int_dtype
        )
        self._alive = np.ones(shape, dtype=bool)

    # ------------------------------------------------------------ properties
    @property
    def num_nodes(self) -> int:
        """Number of devices ``N`` per replicate."""
        return self._num_nodes

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R``."""
        return self._num_replicates

    @property
    def round_number(self) -> int:
        """Rounds executed so far."""
        return self._round

    @property
    def fallback_explorations(self) -> int:
        """Node-rounds that fell back to uniform exploration, over all replicates."""
        return self._fallback_explorations

    @property
    def backend(self):
        """The array backend the protocol was configured with."""
        return self._backend

    @property
    def precision(self):
        """The storage :class:`~repro.backends.Precision` of the protocol."""
        return self._precision

    def choices(self) -> np.ndarray:
        """Per-replicate, per-node current options, shape ``(R, N)``; copy.

        Crashed nodes retain their last committed option here — mask with
        :meth:`alive` (as :meth:`state` does) before counting.
        """
        return self._choices.copy()

    def alive(self) -> np.ndarray:
        """Boolean alive masks, shape ``(R, N)``; copy."""
        return self._alive.copy()

    def alive_counts(self) -> np.ndarray:
        """Per-replicate number of alive nodes, shape ``(R,)``."""
        return self._alive.sum(axis=1)

    def transport_stats(self) -> Dict[str, int]:
        """Message counters aggregated over all replicates."""
        return self._stats.as_dict()

    def state(self) -> BatchedPopulationState:
        """Per-replicate alive-committed counts as a batched state."""
        committed = self._alive & (self._choices >= 0)
        keys = (
            np.arange(self._num_replicates, dtype=np.int64)[:, None]
            * self._num_options
            + np.where(committed, self._choices, 0).astype(np.int64)
        )[committed]
        counts = np.bincount(
            keys, minlength=self._num_replicates * self._num_options
        ).reshape(self._num_replicates, self._num_options)
        return BatchedPopulationState(
            counts=counts.astype(self._precision.int_dtype),
            population_size=self._num_nodes,
            time=self._round,
        )

    def popularity(self) -> np.ndarray:
        """Per-replicate popularity among alive committed nodes, shape ``(R, m)``."""
        return self.state().popularity()

    # --------------------------------------------------------------- crashes
    def _inject_crashes(self) -> None:
        if self._per_round_crash > 0:
            coins = self._rng.random(self._alive.shape) < self._per_round_crash
            self._alive &= ~coins
        if (
            self._mass_failure_round is not None
            and self._round == self._mass_failure_round
            and self._mass_failure_fraction > 0
        ):
            alive_counts = self._alive.sum(axis=1)
            victims = np.rint(self._mass_failure_fraction * alive_counts).astype(
                np.int64
            )
            # Kill the `victims[r]` alive nodes with the smallest random keys
            # in each row — a uniformly random subset of the survivors.
            keys = self._rng.random(self._alive.shape)
            keys[~self._alive] = np.inf
            order = np.argsort(keys, axis=1)
            kill_sorted = np.arange(self._num_nodes)[None, :] < victims[:, None]
            kill = np.zeros_like(self._alive)
            np.put_along_axis(kill, order, kill_sorted, axis=1)
            self._alive &= ~kill

    # ----------------------------------------------------------------- round
    def run_round(self, rewards: np.ndarray) -> None:
        """Advance every replicate one round given the rewards ``R^t``.

        ``rewards`` is an ``(R, m)`` matrix of per-replicate binary reward
        realisations, or a single ``(m,)`` vector shared by all replicates.
        """
        rewards = np.asarray(rewards)
        if rewards.shape == (self._num_options,):
            rewards = np.broadcast_to(
                rewards, (self._num_replicates, self._num_options)
            )
        elif rewards.shape != (self._num_replicates, self._num_options):
            raise ValueError(
                f"rewards must have shape ({self._num_replicates}, "
                f"{self._num_options}) or ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        # 1. Crash injection.
        self._inject_crashes()
        alive_counts = self._alive.sum(axis=1)  # (R,)
        shape = self._alive.shape

        # 2. Sampling stage over the whole (R, N) grid at once.  Lone
        #    survivors always explore (no peer to query).
        explore = self._alive & (
            (self._rng.random(shape) < self._mu) | (alive_counts[:, None] <= 1)
        )
        considered = np.full(shape, -1, dtype=np.int64)
        considered[explore] = self._rng.integers(
            self._num_options, size=int(explore.sum())
        )
        # Per-row rank of each alive node and the row's alive positions in
        # index order — both constant across the retry sub-rounds.
        rank = np.cumsum(self._alive, axis=1) - 1
        alive_order = np.argsort(~self._alive, axis=1, kind="stable")
        peer_high = np.maximum(alive_counts - 1, 1)

        # The retry sub-rounds work on the compressed (replicate, node) index
        # pairs still waiting — the waiting set shrinks geometrically, so
        # later attempts touch a few percent of the grid, not all of it.
        waiting_rows, waiting_cols = np.nonzero(self._alive & ~explore)
        for _ in range(self._max_query_attempts):
            num_waiting = waiting_rows.size
            if num_waiting == 0:
                break
            # 3a. One uniform integer draw per query; rank-shift excludes
            #     self (waiting cells always have >= 2 alive in their row).
            draws = self._rng.integers(peer_high[waiting_rows])
            peer_rank = draws + (draws >= rank[waiting_rows, waiting_cols])
            peers = alive_order[waiting_rows, peer_rank]
            # 3b/3c. Loss masks and stats via the shared sub-round law.
            peer_choice = self._choices[waiting_rows, peers]
            satisfied = _lossy_exchange(
                self._rng, self._loss_rate, peer_choice, self._stats
            )
            considered[waiting_rows[satisfied], waiting_cols[satisfied]] = (
                peer_choice[satisfied]
            )
            waiting_rows = waiting_rows[~satisfied]
            waiting_cols = waiting_cols[~satisfied]

        # 4. Fallback exploration for nodes that never heard back.
        num_fallback = waiting_rows.size
        if num_fallback:
            considered[waiting_rows, waiting_cols] = self._rng.integers(
                self._num_options, size=num_fallback
            )
            self._fallback_explorations += num_fallback

        # 5. Adoption stage: gather each node's considered-option signal and
        #    thin in one broadcast draw.
        active = considered >= 0
        signals = np.take_along_axis(
            rewards, np.where(active, considered, 0), axis=1
        )
        adopt_probability = self._adoption_rule.adopt_probabilities(signals)
        adopted = (self._rng.random(shape) < adopt_probability) & active
        self._choices = np.where(
            active, np.where(adopted, considered, -1), self._choices
        ).astype(self._precision.int_dtype)
        self._round += 1

    def run(self, environment: RewardEnvironment, rounds: int) -> BatchedProtocolResult:
        """Run every replicate for ``rounds`` rounds against ``environment``.

        Each round draws one ``(R, m)`` reward batch via
        :meth:`~repro.environments.base.RewardEnvironment.sample_batch`, so
        replicates observe independent reward realisations from the same
        environment instance.
        """
        rounds = check_positive_int(rounds, "rounds")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and protocol disagree on the number of options"
            )
        state = self.state()
        trajectory = BatchedTrajectory(initial_state=state)
        alive_rows = []
        float_dtype = self._precision.float_dtype
        for _ in range(rounds):
            pre_round_popularity = state.popularity(dtype=float_dtype)
            rewards = environment.sample_batch(self._num_replicates)
            alive_rows.append(self._alive.sum(axis=1))
            self.run_round(rewards)
            state = self.state()
            trajectory.record(pre_round_popularity, rewards, state)
        return BatchedProtocolResult(
            trajectory=trajectory,
            alive_matrix=np.stack(alive_rows),
            transport_stats=self._stats.as_dict(),
            fallback_explorations=self._fallback_explorations,
            best_option=environment.best_option,
            best_quality=environment.best_quality,
        )
