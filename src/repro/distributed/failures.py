"""Failure injection for the distributed protocol simulation."""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_non_negative_int, check_probability


class FailureModel(abc.ABC):
    """Decides which nodes crash at the start of each round."""

    @abc.abstractmethod
    def crashes_for_round(
        self, round_number: int, alive_nodes: Sequence[int]
    ) -> List[int]:
        """Node ids (subset of ``alive_nodes``) that crash at the start of this round."""


class NoFailures(FailureModel):
    """The default: nothing ever crashes."""

    def crashes_for_round(
        self, round_number: int, alive_nodes: Sequence[int]
    ) -> List[int]:
        return []


class CrashFailureModel(FailureModel):
    """Crash-stop failures: each alive node crashes independently per round.

    Optionally a one-off mass failure can be scheduled at a specific round
    (e.g. "30% of the sensors die at round 200"), which experiment E10 uses to
    show the surviving group recovers thanks to the exploration floor ``mu``.

    Parameters
    ----------
    per_round_crash_probability:
        Probability that each alive node crashes at the start of any round.
    mass_failure_round:
        Round at which a mass failure occurs (``None`` disables it).
    mass_failure_fraction:
        Fraction of currently-alive nodes killed by the mass failure.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        per_round_crash_probability: float = 0.0,
        mass_failure_round: int | None = None,
        mass_failure_fraction: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        self._per_round = check_probability(
            per_round_crash_probability, "per_round_crash_probability"
        )
        if mass_failure_round is not None:
            mass_failure_round = check_non_negative_int(
                mass_failure_round, "mass_failure_round"
            )
        self._mass_failure_round = mass_failure_round
        self._mass_failure_fraction = check_probability(
            mass_failure_fraction, "mass_failure_fraction"
        )
        self._rng = ensure_rng(rng)

    def crashes_for_round(
        self, round_number: int, alive_nodes: Sequence[int]
    ) -> List[int]:
        alive = list(alive_nodes)
        if not alive:
            return []
        crashed: set[int] = set()
        if self._per_round > 0:
            coins = self._rng.random(len(alive)) < self._per_round
            crashed.update(node for node, coin in zip(alive, coins) if coin)
        if (
            self._mass_failure_round is not None
            and round_number == self._mass_failure_round
            and self._mass_failure_fraction > 0
        ):
            count = int(round(self._mass_failure_fraction * len(alive)))
            count = min(count, len(alive))
            if count > 0:
                victims = self._rng.choice(alive, size=count, replace=False)
                crashed.update(int(victim) for victim in victims)
        return sorted(crashed)
