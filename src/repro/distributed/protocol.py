"""Round-driven orchestration of the distributed learning protocol.

One protocol round implements exactly one step of the paper's dynamics, but
with the sampling stage realised through explicit message passing over a
possibly unreliable transport:

1. crash injection (per the :class:`~repro.distributed.failures.FailureModel`);
2. every alive node either explores (probability ``mu``) or sends a
   :class:`ChoiceQuery` to one uniformly random alive peer;
3. queries that arrive this round are answered with :class:`ChoiceReply`
   messages carrying the peer's previous-round option;
4. replies that arrive are recorded; a node whose peer reported "sitting out"
   retries with another random peer (up to ``max_query_attempts`` sub-rounds —
   this realises the paper's sampling, which is proportional to popularity
   *among committed individuals*); nodes whose query or reply was lost,
   delayed past the round, or never found a committed peer fall back to
   uniform exploration, so the protocol is never blocked by communication
   failures;
5. the environment draws the round's quality signals ``R^t``; every node with
   a considered option observes that option's signal locally and runs the
   adopt step.

The group-level popularity (over alive, committed nodes) is recorded before
each round so the standard regret definitions apply unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.regret import RegretAccumulator
from repro.distributed.failures import FailureModel, NoFailures
from repro.distributed.messages import ChoiceQuery, ChoiceReply
from repro.distributed.node import ProtocolNode
from repro.distributed.transport import LossyTransport
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass
class ProtocolResult:
    """Outcome of a full protocol run.

    Attributes
    ----------
    popularity_matrix:
        ``(rounds, m)`` matrix of pre-round popularity among alive committed
        nodes.
    reward_matrix:
        ``(rounds, m)`` matrix of the quality signals drawn each round.
    regret:
        Average regret over the run (same definition as ``Regret_N(T)``).
    best_option_share:
        Average pre-round popularity of the environment's best option.
    alive_series:
        Number of alive nodes at the start of each round.
    transport_stats:
        Message counters from the transport layer.
    fallback_explorations:
        Number of node-rounds that fell back to uniform exploration because a
        query or reply was lost or late.
    """

    popularity_matrix: np.ndarray
    reward_matrix: np.ndarray
    regret: float
    best_option_share: float
    alive_series: np.ndarray
    transport_stats: Dict[str, int]
    fallback_explorations: int

    @property
    def rounds(self) -> int:
        """Number of protocol rounds executed."""
        return int(self.popularity_matrix.shape[0])


class ProtocolBase(abc.ABC):
    """Shared substrate of the distributed-protocol engines.

    Owns everything that does not depend on *how* a round is computed: the
    option count, the exploration rate ``mu``, the generator, the round
    counter, the fallback-exploration counter, and the :meth:`run` driver
    (per-round regret accounting via :class:`RegretAccumulator`, popularity /
    reward / alive bookkeeping, and the :class:`ProtocolResult` assembly).

    Engines implement :meth:`run_round` (one lossy round for the whole
    group), :meth:`popularity` (pre-round popularity among alive committed
    nodes), :meth:`num_alive` and :meth:`transport_stats`.  Today's engines:

    * :class:`DistributedLearningProtocol` — the explicit message-passing
      loop (one Python object per node, real :class:`Message` objects over a
      :class:`LossyTransport`); the only engine that models per-message
      *delay*; and
    * :class:`~repro.distributed.vectorized.VectorizedProtocol` — the
      array-ops engine (peer sampling, loss masks and the adopt step as
      whole-population NumPy operations), loss-only.

    Parameters
    ----------
    num_options:
        Number of options ``m``.
    exploration_rate:
        The probability ``mu`` of deliberate uniform exploration.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        num_options: int,
        exploration_rate: float,
        rng: RngLike = None,
    ) -> None:
        self._num_options = check_positive_int(num_options, "num_options")
        self._mu = check_probability(exploration_rate, "exploration_rate")
        self._rng = ensure_rng(rng)
        self._round = 0
        self._fallback_explorations = 0

    # ------------------------------------------------------------ properties
    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def exploration_rate(self) -> float:
        """The exploration probability ``mu``."""
        return self._mu

    @property
    def round_number(self) -> int:
        """Rounds executed so far."""
        return self._round

    @property
    def fallback_explorations(self) -> int:
        """Node-rounds that fell back to uniform exploration so far."""
        return self._fallback_explorations

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def popularity(self) -> np.ndarray:
        """Popularity among alive committed nodes (uniform when none committed)."""

    @abc.abstractmethod
    def num_alive(self) -> int:
        """Number of nodes that have not crashed."""

    @abc.abstractmethod
    def run_round(self, rewards: np.ndarray) -> None:
        """Execute one protocol round with the given quality signals."""

    @abc.abstractmethod
    def transport_stats(self) -> Dict[str, int]:
        """Message counters accumulated so far, as a plain dict."""

    # ---------------------------------------------------------------- driver
    def _validated_rewards(self, rewards: np.ndarray) -> np.ndarray:
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        return rewards

    def run(self, environment: RewardEnvironment, rounds: int) -> ProtocolResult:
        """Run the protocol for ``rounds`` rounds against ``environment``."""
        rounds = check_positive_int(rounds, "rounds")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and protocol disagree on the number of options"
            )
        best_option = environment.best_option
        accumulator = RegretAccumulator(best_quality=environment.best_quality)
        popularity_rows = []
        reward_rows = []
        alive_series = []
        for _ in range(rounds):
            popularity = self.popularity()
            rewards = environment.sample()
            alive_series.append(self.num_alive())
            self.run_round(rewards)
            accumulator.update(popularity, rewards)
            popularity_rows.append(popularity)
            reward_rows.append(rewards)
        popularity_matrix = np.stack(popularity_rows)
        return ProtocolResult(
            popularity_matrix=popularity_matrix,
            reward_matrix=np.stack(reward_rows),
            regret=accumulator.regret(),
            best_option_share=float(popularity_matrix[:, best_option].mean()),
            alive_series=np.asarray(alive_series, dtype=np.int64),
            transport_stats=self.transport_stats(),
            fallback_explorations=self._fallback_explorations,
        )


class DistributedLearningProtocol(ProtocolBase):
    """Simulator of the protocol over ``N`` message-passing nodes.

    Parameters
    ----------
    num_nodes:
        Number of devices ``N``.
    num_options:
        Number of options ``m``.
    adoption_rule:
        Shared adoption rule (per-node rules are supported by passing a list
        to :meth:`with_nodes`).
    exploration_rate:
        The probability ``mu`` of deliberate uniform exploration.
    transport:
        Message transport; defaults to a perfect (lossless, no-delay) one.
    failure_model:
        Crash injection model; defaults to no failures.
    max_query_attempts:
        How many times a node re-queries (with a fresh random peer) when the
        previous peer reported sitting out or the exchange was lost, before
        falling back to uniform exploration.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        num_nodes: int,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        exploration_rate: float = 0.05,
        transport: Optional[LossyTransport] = None,
        failure_model: Optional[FailureModel] = None,
        max_query_attempts: int = 6,
        rng: RngLike = None,
    ) -> None:
        num_nodes = check_positive_int(num_nodes, "num_nodes")
        super().__init__(num_options, exploration_rate, rng)
        adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        self._nodes = [
            ProtocolNode(
                node_id=node_id,
                num_options=num_options,
                adoption_rule=adoption_rule,
                initial_option=int(self._rng.integers(num_options)),
            )
            for node_id in range(num_nodes)
        ]
        self._transport = transport or LossyTransport(rng=self._rng)
        self._failure_model = failure_model or NoFailures()
        self._max_query_attempts = check_positive_int(
            max_query_attempts, "max_query_attempts"
        )

    # ------------------------------------------------------------ properties
    @property
    def nodes(self) -> List[ProtocolNode]:
        """The simulated devices."""
        return self._nodes

    @property
    def transport(self) -> LossyTransport:
        """The transport layer."""
        return self._transport

    def alive_nodes(self) -> List[ProtocolNode]:
        """Nodes that have not crashed."""
        return [node for node in self._nodes if not node.crashed]

    def num_alive(self) -> int:
        """Number of nodes that have not crashed."""
        return len(self.alive_nodes())

    def transport_stats(self) -> Dict[str, int]:
        """Message counters from the transport layer."""
        return self._transport.stats.as_dict()

    def popularity(self) -> np.ndarray:
        """Popularity among alive committed nodes (uniform when none committed)."""
        counts = np.zeros(self._num_options, dtype=np.int64)
        for node in self._nodes:
            if not node.crashed and node.current_option is not None:
                counts[node.current_option] += 1
        total = counts.sum()
        if total == 0:
            return np.full(self._num_options, 1.0 / self._num_options)
        return counts / total

    # ----------------------------------------------------------------- round
    def run_round(self, rewards: np.ndarray) -> None:
        """Execute one protocol round with the given quality signals."""
        rewards = self._validated_rewards(rewards)

        # 1. Crash injection.
        alive_ids = [node.node_id for node in self.alive_nodes()]
        for node_id in self._failure_model.crashes_for_round(self._round, alive_ids):
            self._nodes[node_id].crash()

        alive = self.alive_nodes()
        alive_ids = [node.node_id for node in alive]
        if not alive_ids:
            self._round += 1
            return

        # 2. Sampling stage: a mu-fraction explores locally; the rest query a
        #    random alive peer, retrying with fresh peers when the peer turned
        #    out to be sitting out or the exchange was lost.
        explorers = []
        awaiting_reply: set[int] = set()
        for node in alive:
            if self._rng.random() < self._mu or len(alive_ids) == 1:
                explorers.append(node)
            else:
                awaiting_reply.add(node.node_id)
        for node in explorers:
            node.explore(self._rng)

        for _ in range(self._max_query_attempts):
            if not awaiting_reply:
                break
            # 3a. Send one query per still-unsatisfied node.
            for node_id in awaiting_reply:
                peer = node_id
                while peer == node_id:
                    peer = alive_ids[int(self._rng.integers(len(alive_ids)))]
                self._transport.send(self._nodes[node_id].make_query(peer, self._round))
            # 3b. Deliver queries and send replies.
            for message in self._transport.deliver(self._round):
                if isinstance(message, ChoiceQuery):
                    reply = self._nodes[message.recipient].handle_query(message)
                    if reply is not None:
                        self._transport.send(reply)
            # 3c. Deliver replies; satisfied nodes leave the waiting set.
            for message in self._transport.deliver(self._round):
                if (
                    isinstance(message, ChoiceReply)
                    and message.recipient in awaiting_reply
                ):
                    if self._nodes[message.recipient].handle_reply(message, self._rng):
                        awaiting_reply.discard(message.recipient)

        # 4. Nodes that never heard back from a committed peer fall back to
        #    uniform exploration so communication failures cannot stall them.
        for node_id in awaiting_reply:
            node = self._nodes[node_id]
            if not node.crashed:
                node.explore(self._rng)
                self._fallback_explorations += 1

        # 5. Adoption stage: every alive node observes its considered option's
        #    fresh signal locally and decides.
        for node in self.alive_nodes():
            if node.considered_option is not None:
                node.adopt_step(int(rewards[node.considered_option]), self._rng)

        self._round += 1
