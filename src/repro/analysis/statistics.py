"""Replication statistics: means, confidence intervals, summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import numpy as np
from scipy import stats

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int


def normal_confidence_interval(
    values: Iterable[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of ``values``.

    With a single value the interval degenerates to ``(value, value)``.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("values must be non-empty")
    confidence = check_in_range(
        confidence, "confidence", 0.0, 1.0, inclusive_low=False, inclusive_high=False
    )
    mean = float(array.mean())
    if array.size == 1:
        return mean, mean
    sem = float(stats.sem(array))
    if sem == 0.0:
        return mean, mean
    margin = float(stats.t.ppf(0.5 + confidence / 2.0, df=array.size - 1) * sem)
    return mean - margin, mean + margin


def bootstrap_confidence_interval(
    values: Iterable[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: RngLike = None,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean of ``values``."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("values must be non-empty")
    confidence = check_in_range(
        confidence, "confidence", 0.0, 1.0, inclusive_low=False, inclusive_high=False
    )
    resamples = check_positive_int(resamples, "resamples")
    if array.size == 1:
        return float(array[0]), float(array[0])
    generator = ensure_rng(rng)
    indices = generator.integers(array.size, size=(resamples, array.size))
    means = array[indices].mean(axis=1)
    lower = float(np.quantile(means, (1.0 - confidence) / 2.0))
    upper = float(np.quantile(means, 0.5 + confidence / 2.0))
    return lower, upper


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean, spread and confidence interval of a scalar metric over replications."""

    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    replications: int

    def as_dict(self) -> dict:
        """Summary as a plain dict for result tables."""
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "replications": self.replications,
        }


def summarize_replications(
    values: Iterable[float], confidence: float = 0.95
) -> ReplicationSummary:
    """Summarise a per-replication scalar metric."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("values must be non-empty")
    ci_low, ci_high = normal_confidence_interval(array, confidence=confidence)
    return ReplicationSummary(
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
        ci_low=ci_low,
        ci_high=ci_high,
        replications=int(array.size),
    )
