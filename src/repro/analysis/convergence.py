"""Convergence detection on popularity and regret time series."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_in_range, check_positive_int


def dominance_time(
    best_option_series: np.ndarray,
    threshold: float = 0.5,
    *,
    sustain: int = 1,
) -> Optional[int]:
    """First step at which the best option's share reaches ``threshold`` and stays
    there for ``sustain`` consecutive steps.

    Returns ``None`` if dominance is never (sustainedly) reached.  The paper
    stresses that the finite dynamics is non-monotone — popularity can dip
    after reaching dominance — so ``sustain > 1`` gives a more robust notion.
    """
    series = np.asarray(best_option_series, dtype=float)
    if series.ndim != 1:
        raise ValueError("best_option_series must be 1-D")
    threshold = check_in_range(threshold, "threshold", 0.0, 1.0)
    sustain = check_positive_int(sustain, "sustain")
    above = series >= threshold
    run = 0
    for index, flag in enumerate(above):
        run = run + 1 if flag else 0
        if run >= sustain:
            return index - sustain + 1
    return None


def time_above_threshold(
    best_option_series: np.ndarray, threshold: float = 0.5
) -> float:
    """Fraction of steps in which the best option's share is at least ``threshold``."""
    series = np.asarray(best_option_series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("best_option_series must be a non-empty 1-D array")
    threshold = check_in_range(threshold, "threshold", 0.0, 1.0)
    return float((series >= threshold).mean())


def regret_crossing_time(regret_series: np.ndarray, bound: float) -> Optional[int]:
    """First step at which the running average regret drops below ``bound`` for good.

    ``regret_series[t]`` is the average regret of the first ``t + 1`` steps
    (as produced by :meth:`repro.core.regret.RegretAccumulator.regret_series`).
    Returns the first index after which the series never exceeds ``bound``
    again, or ``None`` if it ends above the bound.
    """
    series = np.asarray(regret_series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("regret_series must be a non-empty 1-D array")
    above = series > bound
    if above[-1]:
        return None
    last_above = np.where(above)[0]
    if last_above.size == 0:
        return 0
    return int(last_above[-1] + 1)
