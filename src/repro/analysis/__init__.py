"""Analysis toolkit: concentration bounds, convergence detection and statistics.

These helpers connect raw simulation output to the quantities the paper's
proofs reason about: Chernoff–Hoeffding concentration (Theorem 4.1), the
``c``-closeness relation ``A ~c B`` (Definition 4.1), convergence/dominance
times, and replication statistics (means and confidence intervals) used by
every benchmark table.
"""

from repro.analysis.concentration import (
    chernoff_hoeffding_probability,
    is_multiplicatively_close,
    multiplicative_deviation,
)
from repro.analysis.convergence import (
    dominance_time,
    regret_crossing_time,
    time_above_threshold,
)
from repro.analysis.statistics import (
    ReplicationSummary,
    bootstrap_confidence_interval,
    normal_confidence_interval,
    summarize_replications,
)
from repro.analysis.trajectories import (
    aggregate_popularity,
    aggregate_regret_series,
    stack_best_option_series,
)
from repro.analysis.proof_trace import ProofTrace, trace_theorem_43

__all__ = [
    "chernoff_hoeffding_probability",
    "is_multiplicatively_close",
    "multiplicative_deviation",
    "dominance_time",
    "regret_crossing_time",
    "time_above_threshold",
    "ReplicationSummary",
    "bootstrap_confidence_interval",
    "normal_confidence_interval",
    "summarize_replications",
    "aggregate_popularity",
    "aggregate_regret_series",
    "stack_best_option_series",
    "ProofTrace",
    "trace_theorem_43",
]
