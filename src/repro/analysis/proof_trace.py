"""Executable trace of the Theorem 4.3 potential-function argument.

The proof of Theorem 4.3 (Section 5) controls the potential
``Phi^T = sum_j W^T_j`` from above and below:

* upper bound (applied step by step):
  ``Phi^T <= (1-beta)^T (1 + mu(e^delta - 1))^T m exp(delta' * sum_t <P^{t-1}, R^t>)``
  with ``delta' = (1-mu)(e^delta - 1)/(1 + mu delta) <= delta(1+delta)``;
* lower bound: ``Phi^T >= (1-beta)^T (1-mu)^T exp(delta * sum_t R^t_1)``.

Combining the two and taking logs yields the regret bound.  This module
replays an infinite-population trajectory and evaluates every intermediate
inequality numerically, producing a :class:`ProofTrace` whose
:meth:`ProofTrace.all_hold` certifies that each step of the argument holds on
the realised reward sequence — an "executable proof" useful both as a strong
regression test for the implementation of Eq. (1) and as a pedagogical tool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.infinite import InfiniteTrajectory


@dataclass(frozen=True)
class ProofTrace:
    """Numerical evaluation of the Theorem 4.3 proof steps on one trajectory.

    Attributes
    ----------
    log_potential:
        The realised ``ln Phi^T`` from the trajectory.
    log_upper_bound:
        The proof's upper bound on ``ln Phi^T``.
    log_lower_bound:
        The proof's lower bound on ``ln Phi^T``.
    regret_bound_rhs:
        The bound on the average regret implied by the potential argument,
        in its exact pathwise form
        ``ln(m)/(delta T) + ln((1 + mu(e^delta - 1))/(1 - mu))/delta
        + max(delta' - delta, 0)/delta * (group reward / T)``;
        for the theorem's parameter range (``delta <= 1``, ``6 mu <= delta^2``)
        this is at most the paper's ``ln(m)/(delta T) + 2*delta``.
    realised_average_regret:
        ``(1/T)(sum_t R^t_1 - sum_t <P^{t-1}, R^t>)`` — the quantity the proof
        actually bounds (regret against the best option's realised rewards).
    """

    log_potential: float
    log_upper_bound: float
    log_lower_bound: float
    regret_bound_rhs: float
    realised_average_regret: float

    def upper_bound_holds(self) -> bool:
        """Whether ``Phi^T <=`` the proof's upper bound."""
        return self.log_potential <= self.log_upper_bound + 1e-9

    def lower_bound_holds(self) -> bool:
        """Whether ``Phi^T >=`` the proof's lower bound."""
        return self.log_potential >= self.log_lower_bound - 1e-9

    def regret_bound_holds(self) -> bool:
        """Whether the realised average regret is within the derived bound."""
        return self.realised_average_regret <= self.regret_bound_rhs + 1e-9

    def all_hold(self) -> bool:
        """Whether every traced inequality holds."""
        return (
            self.upper_bound_holds()
            and self.lower_bound_holds()
            and self.regret_bound_holds()
        )


def trace_theorem_43(
    trajectory: InfiniteTrajectory,
    *,
    beta: float,
    mu: float,
    best_option: int = 0,
) -> ProofTrace:
    """Evaluate the Theorem 4.3 proof inequalities on a recorded trajectory.

    Parameters
    ----------
    trajectory:
        Output of :meth:`repro.core.infinite.InfinitePopulationDynamics.run`
        (or ``run_on_rewards``) started from the uniform distribution with
        the same ``beta``/``mu``.
    beta, mu:
        The parameters the trajectory was generated with.
    best_option:
        Index of the option playing the role of ``j = 1`` in the proof.
    """
    if trajectory.horizon == 0:
        raise ValueError("trajectory must contain at least one step")
    if not 0.5 < beta < 1.0:
        raise ValueError(f"beta must be in (1/2, 1), got {beta}")
    if not 0.0 <= mu <= 1.0:
        raise ValueError(f"mu must be in [0, 1], got {mu}")
    if mu >= 1.0:
        raise ValueError("the lower bound degenerates at mu = 1")

    horizon = trajectory.horizon
    num_options = trajectory.num_options
    if not 0 <= best_option < num_options:
        raise ValueError(f"best_option {best_option} out of range")

    delta = math.log(beta / (1.0 - beta))
    rewards = trajectory.reward_matrix().astype(float)
    distributions = trajectory.distribution_matrix()
    group_reward = float(np.einsum("tj,tj->t", distributions, rewards).sum())
    best_reward = float(rewards[:, best_option].sum())

    log_potential = trajectory.log_potentials[-1]

    delta_prime = (1.0 - mu) * (math.exp(delta) - 1.0) / (1.0 + mu * delta)
    log_upper_bound = (
        horizon * math.log(1.0 - beta)
        + horizon * math.log(1.0 + mu * (math.exp(delta) - 1.0))
        + math.log(num_options)
        + delta_prime * group_reward
    )
    log_lower_bound = (
        horizon * math.log(1.0 - beta)
        + horizon * math.log(1.0 - mu)
        + delta * best_reward
    )

    realised_average_regret = (best_reward - group_reward) / horizon
    # Exact pathwise form of the paper's combination of the two potential
    # bounds: delta * sum R_1 - delta' * sum <P, R> <= ln m + T ln(...),
    # rearranged for (sum R_1 - sum <P, R>) / T and with the (delta' - delta)
    # term dropped only when it is negative (which can only help the bound).
    mixing_term = math.log((1.0 + mu * (math.exp(delta) - 1.0)) / (1.0 - mu))
    slack_term = max(delta_prime - delta, 0.0) * group_reward / horizon
    regret_bound_rhs = (
        math.log(num_options) / (delta * horizon)
        + mixing_term / delta
        + slack_term / delta
    )

    return ProofTrace(
        log_potential=float(log_potential),
        log_upper_bound=float(log_upper_bound),
        log_lower_bound=float(log_lower_bound),
        regret_bound_rhs=float(regret_bound_rhs),
        realised_average_regret=float(realised_average_regret),
    )
