"""Concentration utilities matching Theorem 4.1 and Definition 4.1."""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_in_range, check_positive_int


def chernoff_hoeffding_probability(n: int, mean: float, deviation: float) -> float:
    """Theorem 4.1's failure-probability bound ``2 exp(-n * gamma * delta^2 / 3)``.

    Bounds ``P[|sample_mean - gamma| > gamma * delta]`` for ``n`` independent
    Bernoulli variables with average mean ``gamma`` and relative deviation
    ``delta`` in ``(0, 1]``.

    Parameters
    ----------
    n:
        Number of independent Bernoulli variables.
    mean:
        The average mean ``gamma``.
    deviation:
        The relative deviation ``delta``.
    """
    n = check_positive_int(n, "n")
    mean = check_in_range(mean, "mean", 0.0, 1.0)
    deviation = check_in_range(deviation, "deviation", 0.0, 1.0, inclusive_low=False)
    return min(1.0, 2.0 * math.exp(-n * mean * deviation**2 / 3.0))


def multiplicative_deviation(a: np.ndarray | float, b: np.ndarray | float) -> float:
    """The smallest ``c >= 1`` such that ``A ~c B`` in the sense of Definition 4.1.

    Definition 4.1: ``A ~c B`` means ``1/c <= A/B <= c``.  For vectors the
    worst entry is returned.  Pairs where both entries are zero are treated as
    perfectly close; pairs where exactly one is zero give ``inf``.
    """
    a = np.atleast_1d(np.asarray(a, dtype=float))
    b = np.atleast_1d(np.asarray(b, dtype=float))
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("multiplicative closeness is defined for non-negative values")
    worst = 1.0
    for x, y in zip(a.ravel(), b.ravel()):
        if x == 0.0 and y == 0.0:
            continue
        if x == 0.0 or y == 0.0:
            return float("inf")
        worst = max(worst, x / y, y / x)
    return float(worst)


def is_multiplicatively_close(
    a: np.ndarray | float, b: np.ndarray | float, c: float
) -> bool:
    """Whether ``A ~c B`` holds (Definition 4.1) for every entry."""
    if c < 1.0:
        raise ValueError(f"closeness constant c must be at least 1, got {c}")
    return multiplicative_deviation(a, b) <= c
