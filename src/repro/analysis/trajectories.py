"""Aggregation across replicated trajectories."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.state import Trajectory
from repro.utils.validation import check_in_range


def stack_best_option_series(
    trajectories: Sequence[Trajectory], best_option: int
) -> np.ndarray:
    """Stack the best option's pre-step popularity across replications.

    Returns a ``(replications, T)`` matrix; all trajectories must have the
    same horizon.
    """
    if not trajectories:
        raise ValueError("need at least one trajectory")
    horizons = {trajectory.horizon for trajectory in trajectories}
    if len(horizons) != 1:
        raise ValueError(f"trajectories have differing horizons: {sorted(horizons)}")
    return np.stack(
        [trajectory.best_option_popularity(best_option) for trajectory in trajectories]
    )


def aggregate_popularity(
    trajectories: Sequence[Trajectory], best_option: int, quantile: float = 0.1
) -> Dict[str, np.ndarray]:
    """Mean and quantile bands of the best option's popularity over time.

    Returns a dict with ``mean``, ``lower`` (the ``quantile`` quantile) and
    ``upper`` (the ``1 - quantile`` quantile), each of length ``T``.
    """
    quantile = check_in_range(quantile, "quantile", 0.0, 0.5)
    stacked = stack_best_option_series(trajectories, best_option)
    return {
        "mean": stacked.mean(axis=0),
        "lower": np.quantile(stacked, quantile, axis=0),
        "upper": np.quantile(stacked, 1.0 - quantile, axis=0),
    }


def aggregate_regret_series(
    trajectories: Sequence[Trajectory], best_quality: float
) -> np.ndarray:
    """Mean running-average regret across replications (length ``T``).

    For each trajectory the running average regret after ``t`` steps is
    ``eta_1 - (1/t) sum_{s<=t} <Q^{s-1}, R^s>``; the mean over replications
    estimates the expectation in the paper's regret definition as a function
    of the horizon.
    """
    if not trajectories:
        raise ValueError("need at least one trajectory")
    best_quality = check_in_range(best_quality, "best_quality", 0.0, 1.0)
    series = []
    for trajectory in trajectories:
        popularities = trajectory.popularity_matrix()
        rewards = trajectory.reward_matrix()
        per_step = np.einsum("tj,tj->t", popularities, rewards.astype(float))
        running = np.cumsum(per_step) / np.arange(1, per_step.size + 1)
        series.append(best_quality - running)
    horizons = {len(s) for s in series}
    if len(horizons) != 1:
        raise ValueError("trajectories have differing horizons")
    return np.stack(series).mean(axis=0)
