"""CSV input/output for result tables.

The environment has no plotting stack, so persistent results are written as
CSV for plotting elsewhere.  Only the standard library ``csv`` module is used.

Round-trip contract: the write/read pair is **asymmetric for missing cells**.
A row lacking some column is written as an empty cell (CSV has no other way
to say "absent"), and :func:`read_csv` *drops* empty cells from their row
rather than inventing a value for them — so sparse rows survive a round trip
as sparse rows, but a genuinely empty *string* value does not (it reads back
as absent).  Write a sentinel if the distinction matters.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Union

from repro.experiments.results import ResultTable

PathLike = Union[str, Path]


def write_csv(table: ResultTable, path: PathLike, *, append: bool = False) -> Path:
    """Write a result table to ``path`` (parent directories are created).

    Returns the resolved path.  Missing cells are written as empty strings
    (and are dropped again by :func:`read_csv` — see the module docstring
    for the round-trip contract).

    With ``append=True``, rows are added to an existing file instead of
    rewriting it — the incremental-flush mode sharded runs use, so each
    completed chunk costs one append rather than a whole-table rewrite.  The
    existing header stays authoritative: appended rows must not introduce
    new columns (a ``ValueError`` names any offenders), and cells for
    existing columns a row lacks are written empty as usual.  Appending to a
    missing or empty file is an ordinary write.
    """
    if len(table) == 0:
        raise ValueError("refusing to write an empty result table")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if append and path.exists() and path.stat().st_size > 0:
        with path.open("r", newline="") as handle:
            header = next(csv.reader(handle), None)
        if not header:
            raise ValueError(f"cannot append to {path}: existing header is empty")
        extra = [column for column in table.columns if column not in header]
        if extra:
            raise ValueError(
                f"cannot append to {path}: rows introduce columns {extra} "
                f"missing from the existing header {header}"
            )
        with path.open("a", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=header, restval="")
            for row in table.rows:
                writer.writerow(row)
        return path
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=table.columns, restval="")
        writer.writeheader()
        for row in table.rows:
            writer.writerow(row)
    return path


def read_csv(path: PathLike) -> ResultTable:
    """Read a result table previously written by :func:`write_csv`.

    Numeric-looking cells are converted back to ``int``/``float``; empty
    cells are **dropped** from their row (the inverse of how missing cells
    are written — see the module docstring), so ``row.get(column)`` after a
    round trip distinguishes "absent" from any real value.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such results file: {path}")
    table = ResultTable()
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        for raw_row in reader:
            row = {}
            for key, value in raw_row.items():
                if value is None or value == "":
                    continue
                row[key] = _parse_cell(value)
            if row:
                table.add_row(row)
    return table


# Strictly the spellings str(int)/str(float) produce for finite numbers.
# Python's int()/float() constructors are far more permissive — they accept
# underscore separators ("1_000"), surrounding whitespace (" 7 ") and
# inf/nan spellings — so parsing with them would silently turn string-valued
# cells into numbers on read.  Non-finite floats (written as "inf"/"nan")
# therefore round-trip as *strings*; like the empty-cell asymmetry in the
# module docstring, write a sentinel if the distinction matters.
_INT_CELL = re.compile(r"[+-]?[0-9]+\Z")
_FLOAT_CELL = re.compile(
    r"[+-]?(?:[0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)(?:[eE][+-]?[0-9]+)?\Z"
)


def _parse_cell(value: str):
    """Conversion of a CSV cell back to int/float/bool/str.

    Only cells matching the strict numeric patterns above convert; anything
    else — including ``"1_000"``, ``" 7 "``, ``"inf"`` and ``"nan"`` —
    stays a string, so string-valued columns survive a round trip intact.
    """
    if value == "True":
        return True
    if value == "False":
        return False
    if _INT_CELL.fullmatch(value):
        return int(value)
    if _FLOAT_CELL.fullmatch(value):
        return float(value)
    return value
