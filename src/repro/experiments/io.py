"""CSV input/output for result tables.

The environment has no plotting stack, so persistent results are written as
CSV for plotting elsewhere.  Only the standard library ``csv`` module is used.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.experiments.results import ResultTable

PathLike = Union[str, Path]


def write_csv(table: ResultTable, path: PathLike) -> Path:
    """Write a result table to ``path`` (parent directories are created).

    Returns the resolved path.  Missing cells are written as empty strings.
    """
    if len(table) == 0:
        raise ValueError("refusing to write an empty result table")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=table.columns, restval="")
        writer.writeheader()
        for row in table.rows:
            writer.writerow(row)
    return path


def read_csv(path: PathLike) -> ResultTable:
    """Read a result table previously written by :func:`write_csv`.

    Numeric-looking cells are converted back to ``int``/``float``; empty cells
    are dropped from their row.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such results file: {path}")
    table = ResultTable()
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        for raw_row in reader:
            row = {}
            for key, value in raw_row.items():
                if value is None or value == "":
                    continue
                row[key] = _parse_cell(value)
            if row:
                table.add_row(row)
    return table


def _parse_cell(value: str):
    """Best-effort conversion of a CSV cell back to int/float/bool/str."""
    lowered = value.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value
