"""Markdown report generation from benchmark result tables.

``pytest benchmarks/ --benchmark-only`` leaves one CSV per experiment in
``benchmarks/results/``.  :func:`generate_report` collates those CSVs into a
single Markdown document (one section per experiment, rendered as a Markdown
table), which is how the numbers quoted in ``EXPERIMENTS.md`` can be refreshed
after a new benchmark run::

    python -c "from repro.experiments.report import generate_report; \
               print(generate_report('benchmarks/results'))" > report.md
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.io import read_csv
from repro.experiments.results import ResultTable

PathLike = Union[str, Path]

#: Human-readable titles for the standard experiment ids.
EXPERIMENT_TITLES: Dict[str, str] = {
    "E1_infinite_regret": "E1 — Theorem 4.3: infinite-population regret vs 3*delta",
    "E2_best_option_share": "E2 — Theorem 4.3 part 2: best-option share lower bound",
    "E3_finite_regret": "E3 — Theorem 4.4: finite-population regret vs 6*delta",
    "E4_coupling": "E4 — Lemma 4.5: finite/infinite coupling closeness",
    "E5_concentration": "E5 — Propositions 4.1-4.3: per-step concentration and occupancy floor",
    "E6_stage_ablation": "E6 — both stages are necessary",
    "E7_baselines": "E7 — comparison against classical algorithms",
    "E8_worked_examples": "E8 — worked examples (Krafft investors, Ellison-Fudenberg)",
    "E9_network_topology": "E9 — network-restricted sampling across topologies",
    "E10_distributed_protocol": "E10 — message-passing protocol under failures",
    "E11_drifting_qualities": "E11 — drifting option qualities",
    "E12_beta_tuning": "E12 — tuning beta toward the classic MWU rate",
    "E13_mu_sensitivity": "E13 — ablation: exploration rate mu",
    "E14_heterogeneity": "E14 — ablation: heterogeneous adoption rules",
}


def table_to_markdown(table: ResultTable, *, float_format: str = "{:.4g}") -> str:
    """Render a :class:`ResultTable` as a GitHub-flavoured Markdown table."""
    if len(table) == 0:
        return "*(empty table)*"
    columns = table.columns

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        if value is None:
            return ""
        return str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in table.rows:
        lines.append("| " + " | ".join(render(row.get(col)) for col in columns) + " |")
    return "\n".join(lines)


def collect_result_tables(results_dir: PathLike) -> Dict[str, ResultTable]:
    """Load every ``*.csv`` in ``results_dir`` keyed by its stem, sorted by name."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no such results directory: {results_dir}")
    tables: Dict[str, ResultTable] = {}
    for path in sorted(results_dir.glob("*.csv")):
        tables[path.stem] = read_csv(path)
    return tables


def _sort_key(name: str) -> tuple:
    """Order E1..E14 numerically, unknown names after them alphabetically."""
    if name.startswith("E") and "_" in name:
        prefix = name.split("_", 1)[0][1:]
        if prefix.isdigit():
            return (0, int(prefix), name)
    return (1, 0, name)


def generate_report(
    results_dir: PathLike,
    *,
    title: str = "Benchmark report — A Distributed Learning Dynamics in Social Groups",
    output_path: Optional[PathLike] = None,
) -> str:
    """Build the Markdown report and optionally write it to ``output_path``."""
    tables = collect_result_tables(results_dir)
    if not tables:
        raise ValueError(f"no result CSVs found in {results_dir}")
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        "Generated from the CSVs produced by `pytest benchmarks/ --benchmark-only`."
    )
    lines.append("")
    for name in sorted(tables, key=_sort_key):
        heading = EXPERIMENT_TITLES.get(name, name)
        lines.append(f"## {heading}")
        lines.append("")
        lines.append(table_to_markdown(tables[name]))
        lines.append("")
    report = "\n".join(lines)
    if output_path is not None:
        output_path = Path(output_path)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(report)
    return report
