"""Canonical replication functions for the distributed protocol.

These are the workloads behind the ``repro protocol`` CLI and the E10
robustness experiments: the message-passing protocol on Bernoulli qualities
under message loss and crash-stop failures, replicated over seeds (and, via
:func:`~repro.experiments.sweep.run_sweep`, over drop-rate / crash grids).
Three interchangeable execution engines share one parameter convention:

* :func:`protocol_point_replication` — the explicit message-passing loop
  (:class:`~repro.distributed.protocol.DistributedLearningProtocol`, one run
  per seed); the only engine that models per-message *delay*;
* :func:`protocol_vectorized_replication` — the array-ops engine
  (:class:`~repro.distributed.vectorized.VectorizedProtocol`), still one run
  per seed but with no Python loop over nodes or messages; and
* :func:`protocol_batched_replication` — the replicate-axis engine
  (:class:`~repro.distributed.vectorized.BatchedProtocol`): all ``R``
  replicates advance as one ``(R, N)`` launch (the ``@batched_replication``
  fast path of ``run_replications``).

Parameter convention (per grid point, merged with ``base_parameters``):

``qualities``
    Sequence of option qualities ``eta_j`` (required).
``N``
    Number of devices (required).
``T``
    Number of protocol rounds (required).
``beta``
    Good-signal adoption probability (default 0.6; symmetric ``alpha``).
``mu``
    Exploration rate (default: the theorem maximum via
    :func:`~repro.core.sampling.default_exploration_rate`).
``loss``
    Per-message drop probability (default 0.0).
``delay``
    Per-message one-round delay probability (default 0.0).  Only the loop
    engine models delay; the vectorised engines raise on ``delay > 0``.
``crash``
    Per-round, per-node crash probability (default 0.0).
``mass_crash_round`` / ``mass_crash_fraction``
    Optional one-off mass failure: the round it happens (default: never) and
    the fraction of surviving nodes it kills (default 0.0).
``max_query_attempts``
    Re-query attempts before falling back to uniform exploration (default 6).
``backend`` / ``dtype``
    Optional array backend and storage precision (batched engine only; the
    per-seed engines refuse non-default values) — see
    :mod:`repro.experiments.engine_options`.

All engines report the same per-replicate metrics — ``regret`` (realised,
the protocol's streaming definition), ``best_option_share`` and
``alive_fraction`` (surviving share at the final round) — and derive their
randomness from the seed lists the harness hands them.  Seeding conventions:
the per-seed engines use ``(env=seed, failures=seed+2, transport=seed+3,
protocol=seed+4)`` — matching the E10 benchmark convention — and the batched
engine derives one generator from the full seed list, shared by the
environment and the dynamics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.sampling import default_exploration_rate
from repro.distributed import (
    BatchedProtocol,
    CrashFailureModel,
    DistributedLearningProtocol,
    LossyTransport,
    NoFailures,
    VectorizedProtocol,
)
from repro.environments import BernoulliEnvironment
from repro.experiments.engine_options import (
    engine_options,
    require_default_engine_options,
)
from repro.experiments.runner import batched_replication

PROTOCOL_ENGINES = ("loop", "vectorized", "batched")
"""The interchangeable execution engines for the protocol workloads."""


def _point_parameters(parameters: Dict[str, Any]) -> Dict[str, Any]:
    """Normalise one point's parameters with engine-shared defaults."""
    try:
        qualities = np.asarray(parameters["qualities"], dtype=float)
        num_nodes = int(parameters["N"])
        rounds = int(parameters["T"])
    except KeyError as error:
        raise KeyError(
            f"protocol points need 'qualities', 'N' and 'T'; missing {error}"
        ) from None
    beta = float(parameters.get("beta", 0.6))
    mu = parameters.get("mu")
    if mu is None:
        mu = default_exploration_rate(SymmetricAdoptionRule(beta))
    mass_round = parameters.get("mass_crash_round")
    return {
        "qualities": qualities,
        "N": num_nodes,
        "T": rounds,
        "beta": beta,
        "mu": float(mu),
        "loss": float(parameters.get("loss", 0.0)),
        "delay": float(parameters.get("delay", 0.0)),
        "crash": float(parameters.get("crash", 0.0)),
        "mass_crash_round": None if mass_round is None else int(mass_round),
        "mass_crash_fraction": float(parameters.get("mass_crash_fraction", 0.0)),
        "max_query_attempts": int(parameters.get("max_query_attempts", 6)),
    }


def _require_no_delay(point: Dict[str, Any], engine: str) -> None:
    if point["delay"] > 0:
        raise ValueError(
            f"the {engine} engine does not model per-message delay "
            f"(delay={point['delay']}); use the loop engine for delayed "
            "transports"
        )


def _failure_model(point: Dict[str, Any], rng) -> CrashFailureModel | NoFailures:
    if (
        point["crash"] > 0
        or (point["mass_crash_round"] is not None and point["mass_crash_fraction"] > 0)
    ):
        return CrashFailureModel(
            per_round_crash_probability=point["crash"],
            mass_failure_round=point["mass_crash_round"],
            mass_failure_fraction=point["mass_crash_fraction"],
            rng=rng,
        )
    return NoFailures()


def protocol_point_replication(
    seed: int, parameters: Dict[str, Any]
) -> Dict[str, float]:
    """Per-seed message-passing loop engine (the ``--engine loop`` reference path)."""
    require_default_engine_options(parameters, "loop")
    point = _point_parameters(parameters)
    environment = BernoulliEnvironment(point["qualities"], rng=seed)
    protocol = DistributedLearningProtocol(
        point["N"],
        int(point["qualities"].size),
        adoption_rule=SymmetricAdoptionRule(point["beta"]),
        exploration_rate=point["mu"],
        transport=LossyTransport(
            loss_rate=point["loss"], delay_rate=point["delay"], rng=seed + 3
        ),
        failure_model=_failure_model(point, seed + 2),
        max_query_attempts=point["max_query_attempts"],
        rng=seed + 4,
    )
    result = protocol.run(environment, point["T"])
    return {
        "regret": float(result.regret),
        "best_option_share": float(result.best_option_share),
        "alive_fraction": float(result.alive_series[-1]) / point["N"],
    }


def protocol_vectorized_replication(
    seed: int, parameters: Dict[str, Any]
) -> Dict[str, float]:
    """Per-seed array-ops engine — one run per seed, no per-node Python loop."""
    require_default_engine_options(parameters, "vectorized")
    point = _point_parameters(parameters)
    _require_no_delay(point, "vectorized")
    environment = BernoulliEnvironment(point["qualities"], rng=seed)
    protocol = VectorizedProtocol(
        point["N"],
        int(point["qualities"].size),
        adoption_rule=SymmetricAdoptionRule(point["beta"]),
        exploration_rate=point["mu"],
        loss_rate=point["loss"],
        failure_model=_failure_model(point, seed + 2),
        max_query_attempts=point["max_query_attempts"],
        rng=seed + 4,
    )
    result = protocol.run(environment, point["T"])
    return {
        "regret": float(result.regret),
        "best_option_share": float(result.best_option_share),
        "alive_fraction": float(result.alive_series[-1]) / point["N"],
    }


@batched_replication
def protocol_batched_replication(
    seeds: Sequence[int], parameters: Dict[str, Any]
) -> List[Dict[str, float]]:
    """All replicates as one ``(R, N)`` launch.

    One generator, seeded by the full seed list, drives the reward draws,
    the loss masks and the crash coins — the batch is reproducible from the
    config alone, while individual replicates inside it share the stream
    (the standard batched-engine trade-off).
    """
    point = _point_parameters(parameters)
    _require_no_delay(point, "batched")
    backend, dtype = engine_options(parameters)
    generator = np.random.default_rng(list(seeds))
    environment = BernoulliEnvironment(point["qualities"], rng=generator)
    protocol = BatchedProtocol(
        point["N"],
        int(point["qualities"].size),
        num_replicates=len(seeds),
        adoption_rule=SymmetricAdoptionRule(point["beta"]),
        exploration_rate=point["mu"],
        loss_rate=point["loss"],
        per_round_crash_probability=point["crash"],
        mass_failure_round=point["mass_crash_round"],
        mass_failure_fraction=point["mass_crash_fraction"],
        max_query_attempts=point["max_query_attempts"],
        rng=generator,
        backend=backend,
        precision=dtype,
    )
    result = protocol.run(environment, point["T"])
    regrets = result.regret()
    shares = result.best_option_share()
    alive = result.alive_matrix[-1] / point["N"]
    return [
        {
            "regret": float(regret),
            "best_option_share": float(share),
            "alive_fraction": float(alive_fraction),
        }
        for regret, share, alive_fraction in zip(regrets, shares, alive)
    ]


PROTOCOL_REPLICATIONS = {
    "loop": protocol_point_replication,
    "vectorized": protocol_vectorized_replication,
    "batched": protocol_batched_replication,
}
"""Engine name -> replication function, for the CLI and sweep wiring."""
