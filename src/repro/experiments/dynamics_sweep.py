"""Canonical replication functions for sweeping the paper's dynamics.

These are the workloads behind benchmark tables and the ``repro sweep`` CLI:
the finite-population dynamics on Bernoulli qualities, swept over any subset
of ``(qualities, N, T, alpha, beta, mu)``.  Three interchangeable execution
engines share one parameter convention:

* :func:`dynamics_point_replication` — the per-seed loop
  (:class:`~repro.core.dynamics.FinitePopulationDynamics`, one run per
  replicate);
* ``@batched_replication`` at each grid point (what PR 1 added) — not defined
  here because :func:`dynamics_grid_replication` strictly dominates it;
* :func:`dynamics_grid_replication` — the sweep-axis batched engine: the
  whole ``G x R`` grid-times-replicates workload flattens into one
  ``(G·R, m)`` :class:`~repro.core.batched.BatchedDynamics` launch with
  per-row parameters, then unflattens into per-point results.

Parameter convention (per grid point, merged with ``base_parameters``):

``qualities``
    Sequence of option qualities ``eta_j`` (required; same length ``m`` at
    every point).
``N``
    Population size (required).
``T``
    Horizon (required; must be shared by every point — the batch advances in
    lock-step).
``beta``
    Good-signal adoption probability (default 0.6).
``alpha``
    Bad-signal adoption probability (default ``1 - beta``, the paper's
    symmetric convention).
``mu``
    Exploration rate (default: the theorem maximum ``min(1, delta^2/6)``
    evaluated at that point's own ``(alpha, beta)``).
``backend`` / ``dtype``
    Optional array backend and storage precision, shared by every point of a
    batch (grid engine only; the loop engine refuses non-default values) —
    see :mod:`repro.experiments.engine_options`.

Both engines report the same metrics per replicate — ``regret`` (expected
regret over the trajectory) and ``best_option_share`` — and both derive their
randomness from the per-point seed lists that
:func:`~repro.experiments.sweep.run_sweep` hands them, so a sweep is
reproducible from ``(grid, replications, seed)`` alone on either engine.

Memory note: the flattened batch keeps, for every one of the ``T`` steps,
three ``(G·R, m)`` matrices — int64 counts, float64 pre-step popularities and
int8 rewards, ~17 bytes per cell-step in total — i.e. ``O(T · G · R · m)``
memory independent of ``N``.  A 20-point x 50-replicate x 300-step sweep over
5 options is ~25 MB — far below the cost of the per-point trajectories it
replaces — but for very large ``G·R·T`` consider splitting the grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.adoption import GeneralAdoptionRule, RowwiseAdoptionRule
from repro.core.batched import BatchedDynamics, BatchedTrajectory
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.regret import best_option_share, expected_regret
from repro.core.sampling import MixtureSampling, default_exploration_rate
from repro.environments import BernoulliEnvironment, RowwiseBernoulliEnvironment
from repro.experiments.engine_options import (
    engine_options,
    require_default_engine_options,
)
from repro.experiments.runner import grid_batched_replication


def _point_parameters(
    parameters: Dict[str, Any],
) -> Tuple[np.ndarray, int, int, float, float, Any]:
    """Extract and validate one grid point's ``(qualities, N, T, alpha, beta, mu)``."""
    try:
        qualities = np.asarray(parameters["qualities"], dtype=float)
        population = int(parameters["N"])
        horizon = int(parameters["T"])
    except KeyError as error:
        raise KeyError(
            f"dynamics sweep points need 'qualities', 'N' and 'T'; missing {error}"
        ) from None
    beta = float(parameters.get("beta", 0.6))
    alpha_value = parameters.get("alpha")
    alpha = float(alpha_value) if alpha_value is not None else 1.0 - beta
    mu = parameters.get("mu")  # None means "derive the theorem default"
    return qualities, population, horizon, alpha, beta, mu


@dataclass(frozen=True)
class FlatGrid:
    """The ``G x R`` grid flattened to per-row parameter arrays.

    Row layout: rows ``g * R .. (g+1) * R - 1`` are the ``R`` replicates of
    grid point ``g`` — the exact inverse of the unflattening performed by
    :func:`dynamics_grid_replication`.
    """

    qualities: np.ndarray  # (G*R, m)
    population_sizes: Union[int, np.ndarray]  # int or (G*R,)
    alpha: np.ndarray  # (G*R,)
    beta: np.ndarray  # (G*R,)
    mu: np.ndarray  # (G*R,)
    horizon: int
    replications: int
    backend: Optional[str] = None  # array backend name, None = numpy
    dtype: Optional[str] = None  # storage precision name, None = float64

    @property
    def num_rows(self) -> int:
        """Total number of flattened rows ``G * R``."""
        return int(self.qualities.shape[0])

    @property
    def num_options(self) -> int:
        """Number of options ``m`` (shared by every grid point)."""
        return int(self.qualities.shape[1])

    def build(self, rng) -> Tuple[BatchedDynamics, RowwiseBernoulliEnvironment]:
        """Construct the single engine launch realising this flattened grid.

        Both the environment and the dynamics draw from the *same* generator,
        mirroring the per-point batched convention, so a sweep row is
        bit-reproducible by rebuilding this pair with an equal generator.
        """
        environment = RowwiseBernoulliEnvironment(
            self.qualities, rng=rng, precision=self.dtype
        )
        dynamics = BatchedDynamics(
            num_replicates=self.num_rows,
            population_size=self.population_sizes,
            num_options=self.num_options,
            adoption_rule=RowwiseAdoptionRule(self.alpha, self.beta),
            sampling_rule=MixtureSampling(self.mu),
            rng=rng,
            backend=self.backend,
            precision=self.dtype,
        )
        return dynamics, environment


def flatten_grid(points: Sequence[Dict[str, Any]], replications: int) -> FlatGrid:
    """Expand per-point parameter dicts into the per-row arrays of one batch.

    Every point's ``qualities`` must have the same length and every point the
    same horizon ``T`` (the batch advances all rows in lock-step); population
    sizes, ``alpha``/``beta`` and ``mu`` may all differ per point.
    """
    if len(points) == 0:
        raise ValueError("need at least one grid point")
    if replications <= 0:
        raise ValueError(f"replications must be positive, got {replications}")

    quality_rows: List[np.ndarray] = []
    sizes: List[int] = []
    alphas: List[float] = []
    betas: List[float] = []
    mus: List[float] = []
    horizons = set()
    option_pairs = {engine_options(parameters) for parameters in points}
    if len(option_pairs) != 1:
        raise ValueError(
            "the flattened batch runs on one backend at one precision, so "
            "every grid point must share the same backend/dtype; got "
            f"{sorted(option_pairs, key=repr)}"
        )
    backend, dtype = option_pairs.pop()
    for parameters in points:
        qualities, population, horizon, alpha, beta, mu = _point_parameters(parameters)
        if mu is None:
            mu = default_exploration_rate(GeneralAdoptionRule(alpha, beta))
        quality_rows.append(qualities)
        sizes.append(population)
        alphas.append(alpha)
        betas.append(beta)
        mus.append(float(mu))
        horizons.add(horizon)
    option_counts = {row.size for row in quality_rows}
    if len(option_counts) != 1:
        raise ValueError(
            f"every grid point must have the same number of options, got {sorted(option_counts)}"
        )
    if len(horizons) != 1:
        raise ValueError(
            "the batched sweep advances all grid points in lock-step, so every "
            f"point must share one horizon T; got {sorted(horizons)}"
        )

    size_array = np.repeat(np.asarray(sizes, dtype=np.int64), replications)
    population_sizes: Union[int, np.ndarray]
    if np.all(size_array == size_array[0]):
        population_sizes = int(size_array[0])
    else:
        population_sizes = size_array
    return FlatGrid(
        # from_points is the one canonical definition of the grid-point ->
        # flattened-row layout; deriving the matrix through it (rather than
        # repeating np.repeat here) keeps the two from drifting apart and
        # validates the qualities at flatten time.
        qualities=RowwiseBernoulliEnvironment.from_points(
            quality_rows, replications
        ).qualities,
        population_sizes=population_sizes,
        alpha=np.repeat(np.asarray(alphas), replications),
        beta=np.repeat(np.asarray(betas), replications),
        mu=np.repeat(np.asarray(mus), replications),
        horizon=horizons.pop(),
        replications=replications,
        backend=backend,
        dtype=dtype,
    )


def _metric_row(regret: float, share: float) -> Dict[str, float]:
    return {"regret": float(regret), "best_option_share": float(share)}


@grid_batched_replication
def dynamics_grid_replication(
    seed_blocks: Sequence[Sequence[int]], points: Sequence[Dict[str, Any]]
) -> List[List[Dict[str, float]]]:
    """Run the whole dynamics sweep as one flattened engine launch.

    The generator is seeded with the concatenation of every point's seed
    list, so the full sweep is a pure function of ``run_sweep``'s
    ``(grid, replications, seed)`` arguments; a single row is reproducible by
    rebuilding the same :class:`FlatGrid` and generator (see
    ``tests/property/test_engine_invariants.py``).
    """
    flat = flatten_grid(points, len(seed_blocks[0]) if seed_blocks else 0)
    if len(seed_blocks) != len(points):
        raise ValueError(
            f"got {len(seed_blocks)} seed blocks for {len(points)} grid points"
        )
    flat_seeds = [seed for block in seed_blocks for seed in block]
    if len(flat_seeds) != flat.num_rows:
        raise ValueError(
            "every grid point must contribute the same number of seeds; got "
            f"{len(flat_seeds)} seeds for {flat.num_rows} rows"
        )
    generator = np.random.default_rng(flat_seeds)
    dynamics, environment = flat.build(generator)
    trajectory: BatchedTrajectory = dynamics.run(environment, flat.horizon)

    regrets = trajectory.expected_regret(flat.qualities)
    shares = trajectory.best_option_share(flat.qualities.argmax(axis=1))
    replications = flat.replications
    return [
        [
            _metric_row(
                regrets[point * replications + row],
                shares[point * replications + row],
            )
            for row in range(replications)
        ]
        for point in range(len(points))
    ]


def dynamics_point_replication(
    seed: int, parameters: Dict[str, Any]
) -> Dict[str, float]:
    """Per-seed loop engine for the same workload (the ``--engine loop`` fallback).

    One :class:`~repro.core.dynamics.FinitePopulationDynamics` run per
    replicate, with the environment seeded at ``seed`` and the dynamics at
    ``seed + 1`` (the repository's per-seed convention).
    """
    require_default_engine_options(parameters, "loop")
    qualities, population, horizon, alpha, beta, mu = _point_parameters(parameters)
    rule = GeneralAdoptionRule(alpha, beta)
    if mu is None:
        mu = default_exploration_rate(rule)
    environment = BernoulliEnvironment(qualities, rng=seed)
    dynamics = FinitePopulationDynamics(
        population_size=population,
        num_options=int(qualities.size),
        adoption_rule=rule,
        sampling_rule=MixtureSampling(float(mu)),
        rng=seed + 1,
    )
    trajectory = dynamics.run(environment, horizon)
    matrix = trajectory.popularity_matrix()
    return _metric_row(
        expected_regret(matrix, qualities),
        best_option_share(matrix, int(qualities.argmax())),
    )
