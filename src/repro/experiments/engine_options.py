"""Shared ``backend`` / ``dtype`` parameter handling for the sweep workloads.

Every sweep family accepts two optional per-grid parameters riding alongside
the scientific ones:

``backend``
    Array backend name (``numpy`` default, ``cupy``/``torch`` optional); see
    :func:`repro.backends.get_namespace`.
``dtype``
    Storage precision name (``float64`` default, ``float32`` opt-in); see
    :data:`repro.backends.PRECISIONS`.

Both ride through the ordinary parameter-dict convention — merged from
``base_parameters``, recorded in result rows and content-address keys like
any other parameter — so a float32 sweep can never silently reuse a float64
cache entry.  Only the batched engines honour them; the per-seed loop and
vectorised reference paths refuse non-default values rather than silently
computing something different from what the key claims.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.backends import BACKENDS, DEFAULT_BACKEND_NAME, PRECISIONS


def engine_options(parameters: Dict[str, Any]) -> Tuple[Optional[str], Optional[str]]:
    """Extract and validate a point's optional ``(backend, dtype)`` pair.

    Absent keys return ``None`` (meaning the defaults); present keys must
    name a known backend / precision.
    """
    backend = parameters.get("backend")
    if backend is not None:
        backend = str(backend)
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
            )
    dtype = parameters.get("dtype")
    if dtype is not None:
        dtype = str(dtype)
        if dtype not in PRECISIONS:
            raise ValueError(
                f"unknown dtype {dtype!r}; expected one of {', '.join(PRECISIONS)}"
            )
    return backend, dtype


def is_default_options(backend: Optional[str], dtype: Optional[str]) -> bool:
    """Whether the pair selects the default NumPy float64/int64 path."""
    return backend in (None, DEFAULT_BACKEND_NAME) and dtype in (None, "float64")


def require_default_engine_options(
    parameters: Dict[str, Any], engine: str
) -> None:
    """Refuse non-default ``backend``/``dtype`` on engines that ignore them.

    The per-seed reference engines always run NumPy float64; letting a
    ``dtype=float32`` parameter through would produce rows whose recorded
    parameters (and content-address keys) misdescribe what actually ran.
    """
    backend, dtype = engine_options(parameters)
    if not is_default_options(backend, dtype):
        raise ValueError(
            f"the {engine} engine only supports the default numpy/float64 "
            f"path (got backend={backend!r}, dtype={dtype!r}); use the "
            "batched engine for backend or dtype overrides"
        )
