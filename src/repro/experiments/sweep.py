"""Parameter sweeps: cartesian grids of experiment configurations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    ReplicatedResult,
    ReplicationFunction,
    _validated_metrics,
    run_replications,
)
from repro.utils.rng import seeds_for_replications


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian product of named parameter values.

    Parameters
    ----------
    axes:
        Mapping from parameter name to the sequence of values to sweep.
        Iteration order follows the insertion order of the mapping, with the
        last axis varying fastest (like nested for-loops).
    """

    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a parameter grid needs at least one axis")
        # Materialise every axis exactly once.  Generators and other one-shot
        # iterables would otherwise be consumed here during validation and
        # silently yield nothing when the grid is iterated.
        normalized = {name: tuple(values) for name, values in self.axes.items()}
        for name, values in normalized.items():
            if len(values) == 0:
                raise ValueError(f"axis '{name}' has no values")
        object.__setattr__(self, "axes", normalized)

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = list(self.axes)
        for combination in itertools.product(*(self.axes[name] for name in names)):
            yield dict(zip(names, combination))


def run_sweep(
    name: str,
    grid: ParameterGrid,
    replication: ReplicationFunction,
    *,
    replications: int = 5,
    seed: int = 0,
    base_parameters: Mapping[str, Any] | None = None,
) -> tuple[List[ReplicatedResult], ResultTable]:
    """Run ``replication`` over every point of ``grid``.

    Returns the raw per-point :class:`ReplicatedResult` objects together with
    a flat :class:`ResultTable` whose rows are the grid parameters plus the
    replication-mean of every metric (the form benchmark tables print).

    Replication functions marked with
    :func:`~repro.experiments.runner.batched_replication` take the batched
    fast path at every grid point: all ``replications`` replicates of a point
    run as one vectorised batch instead of a per-seed loop.  Functions marked
    with :func:`~repro.experiments.runner.grid_batched_replication` go one
    step further — the *entire* ``grid x replications`` workload is handed
    over in a single call (typically one ``(G·R, m)`` engine launch) and the
    returned rows are unflattened back into per-point
    :class:`ReplicatedResult` objects.  All three paths derive identical
    per-point seed lists from ``seed``, so results stay reproducible from the
    arguments alone regardless of the engine.
    """
    configs: List[ExperimentConfig] = []
    for index, point in enumerate(grid):
        parameters = dict(base_parameters or {})
        parameters.update(point)
        configs.append(
            ExperimentConfig(
                name=f"{name}[{index}]",
                parameters=parameters,
                replications=replications,
                seed=seed + index,
            )
        )

    results: List[ReplicatedResult] = []
    table = ResultTable()
    if getattr(replication, "grid_replications", False):
        seed_blocks = [
            seeds_for_replications(config.seed, config.replications)
            for config in configs
        ]
        metric_blocks = list(
            replication(
                [list(block) for block in seed_blocks],
                [dict(config.parameters) for config in configs],
            )
        )
        if len(metric_blocks) != len(configs):
            raise ValueError(
                f"grid replication returned {len(metric_blocks)} metric blocks "
                f"for {len(configs)} grid points"
            )
        for config, seeds, rows in zip(configs, seed_blocks, metric_blocks):
            rows = list(rows)
            if len(rows) != len(seeds):
                raise ValueError(
                    f"grid replication returned {len(rows)} metric rows for "
                    f"{len(seeds)} seeds of {config.name}"
                )
            result = ReplicatedResult(config=config, seeds=seeds)
            result.metrics.extend(_validated_metrics(row) for row in rows)
            results.append(result)
            table.add_row(result.summary_row())
        return results, table

    for config in configs:
        result = run_replications(config, replication)
        results.append(result)
        table.add_row(result.summary_row())
    return results, table
