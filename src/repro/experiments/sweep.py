"""Parameter sweeps: cartesian grids of experiment configurations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    ReplicatedResult,
    ReplicationFunction,
    _validated_metrics,
    run_replications,
)
from repro.utils.rng import seeds_for_replications


@dataclass(frozen=True)
class ParameterGrid:
    """A cartesian product of named parameter values.

    Parameters
    ----------
    axes:
        Mapping from parameter name to the sequence of values to sweep.
        Iteration order follows the insertion order of the mapping, with the
        last axis varying fastest (like nested for-loops).
    """

    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a parameter grid needs at least one axis")
        # Materialise every axis exactly once.  Generators and other one-shot
        # iterables would otherwise be consumed here during validation and
        # silently yield nothing when the grid is iterated.
        normalized = {name: tuple(values) for name, values in self.axes.items()}
        for name, values in normalized.items():
            if len(values) == 0:
                raise ValueError(f"axis '{name}' has no values")
        object.__setattr__(self, "axes", normalized)

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = list(self.axes)
        for combination in itertools.product(*(self.axes[name] for name in names)):
            yield dict(zip(names, combination))


def sweep_configs(
    name: str,
    grid: ParameterGrid,
    *,
    replications: int = 5,
    seed: int = 0,
    base_parameters: Mapping[str, Any] | None = None,
) -> List[ExperimentConfig]:
    """The per-point experiment configs of a sweep, in grid order.

    This is the single canonical derivation — point ``i`` is named
    ``f"{name}[{i}]"`` and seeded at ``seed + i`` — shared by
    :func:`run_sweep` and the parallel runtime's
    :meth:`~repro.runtime.shard.ShardPlan.from_configs`, so sharded and
    in-process sweeps agree on every config and therefore on every seed.
    """
    configs: List[ExperimentConfig] = []
    for index, point in enumerate(grid):
        parameters = dict(base_parameters or {})
        parameters.update(point)
        configs.append(
            ExperimentConfig(
                name=f"{name}[{index}]",
                parameters=parameters,
                replications=replications,
                seed=seed + index,
            )
        )
    return configs


def run_sweep(
    name: str,
    grid: ParameterGrid,
    replication: ReplicationFunction,
    *,
    replications: int = 5,
    seed: int = 0,
    base_parameters: Mapping[str, Any] | None = None,
    options: Any = None,
    executor: Any = None,
    store: Any = None,
) -> tuple[List[ReplicatedResult], ResultTable]:
    """Run ``replication`` over every point of ``grid``.

    Returns the raw per-point :class:`ReplicatedResult` objects together with
    a flat :class:`ResultTable` whose rows are the grid parameters plus the
    replication-mean of every metric (the form benchmark tables print).

    Replication functions marked with
    :func:`~repro.experiments.runner.batched_replication` take the batched
    fast path at every grid point: all ``replications`` replicates of a point
    run as one vectorised batch instead of a per-seed loop.  Functions marked
    with :func:`~repro.experiments.runner.grid_batched_replication` go one
    step further — the *entire* ``grid x replications`` workload is handed
    over in a single call (typically one ``(G·R, m)`` engine launch) and the
    returned rows are unflattened back into per-point
    :class:`ReplicatedResult` objects.  All three paths derive identical
    per-point seed lists from ``seed``, so results stay reproducible from the
    arguments alone regardless of the engine.

    ``options`` — an :class:`~repro.runtime.options.ExecutionOptions` —
    routes the sweep through the parallel runtime (:mod:`repro.runtime`):
    the workload is decomposed into per-point (and, for per-seed functions,
    per-seed) tasks, cache hits are served from the options'
    :class:`~repro.runtime.store.ResultStore`, the misses run on its
    executor — e.g. a multi-process
    :class:`~repro.runtime.executors.ParallelExecutor` or any other
    :class:`~repro.runtime.backend.Backend` — and completed shards are
    flushed to the store as they finish, making interrupted sweeps
    resumable.  Task results are execution-invariant, so any executor and
    any cache state yield bit-identical per-(point, seed) metrics.  One
    caveat: grid-batched functions run one *point* per task (the per-point
    batched convention) rather than as a single fused ``G x R`` launch, so
    their sampled trajectories differ from the in-process grid path while
    remaining statistically equivalent and internally reproducible.  The
    legacy ``executor=``/``store=`` keyword arguments still work but emit
    ``DeprecationWarning`` and run the exact same code path.
    """
    if options is not None or executor is not None or store is not None:
        # Imported lazily: repro.runtime depends on this module's siblings.
        from repro.runtime.options import resolve_options

        options = resolve_options(
            options, executor=executor, store=store, owner="run_sweep"
        )
    if options is not None and options.engine_options:
        base_parameters = options.merged_parameters(base_parameters)
    configs = sweep_configs(
        name,
        grid,
        replications=replications,
        seed=seed,
        base_parameters=base_parameters,
    )

    results: List[ReplicatedResult] = []
    table = ResultTable()

    runtime_executor = options.resolve_executor() if options is not None else None
    runtime_store = options.store if options is not None else None
    runtime_tracer = options.tracer if options is not None else None
    if (
        runtime_executor is not None
        or runtime_store is not None
        or runtime_tracer is not None
    ):
        # Imported lazily: repro.runtime depends on this module's siblings.
        from repro.runtime import ShardPlan, run_plan

        plan = ShardPlan.from_configs(configs, replication)
        rows_per_point = run_plan(
            plan,
            replication,
            executor=runtime_executor,
            store=runtime_store,
            tracer=runtime_tracer,
        )
        for config, rows in zip(configs, rows_per_point):
            result = ReplicatedResult(
                config=config,
                seeds=seeds_for_replications(config.seed, config.replications),
            )
            result.metrics.extend(rows)
            results.append(result)
            table.add_row(result.summary_row())
        return results, table

    if getattr(replication, "grid_replications", False):
        seed_blocks = [
            seeds_for_replications(config.seed, config.replications)
            for config in configs
        ]
        metric_blocks = list(
            replication(
                [list(block) for block in seed_blocks],
                [dict(config.parameters) for config in configs],
            )
        )
        if len(metric_blocks) != len(configs):
            raise ValueError(
                f"grid replication returned {len(metric_blocks)} metric blocks "
                f"for {len(configs)} grid points"
            )
        for config, seeds, rows in zip(configs, seed_blocks, metric_blocks):
            rows = list(rows)
            if len(rows) != len(seeds):
                raise ValueError(
                    f"grid replication returned {len(rows)} metric rows for "
                    f"{len(seeds)} seeds of {config.name}"
                )
            result = ReplicatedResult(config=config, seeds=seeds)
            result.metrics.extend(_validated_metrics(row) for row in rows)
            results.append(result)
            table.add_row(result.summary_row())
        return results, table

    for config in configs:
        result = run_replications(config, replication)
        results.append(result)
        table.add_row(result.summary_row())
    return results, table
