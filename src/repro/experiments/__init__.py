"""Experiment harness: configs, replicated runs, parameter sweeps and result tables.

Benchmarks and examples are written against this small harness rather than
ad-hoc loops so that every experiment (E1–E12 in DESIGN.md) shares the same
seeding discipline, replication statistics, and output formats (text tables
via :func:`repro.utils.format_table` and CSV files via
:func:`repro.experiments.io.write_csv`).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    ReplicatedResult,
    batched_replication,
    grid_batched_replication,
    run_replications,
)
from repro.experiments.sweep import ParameterGrid, run_sweep, sweep_configs
from repro.experiments.dynamics_sweep import (
    FlatGrid,
    dynamics_grid_replication,
    dynamics_point_replication,
    flatten_grid,
)
from repro.experiments.network_sweep import (
    NETWORK_ENGINES,
    NETWORK_REPLICATIONS,
    build_network,
    network_batched_replication,
    network_point_replication,
    network_vectorized_replication,
)
from repro.experiments.protocol_sweep import (
    PROTOCOL_ENGINES,
    PROTOCOL_REPLICATIONS,
    protocol_batched_replication,
    protocol_point_replication,
    protocol_vectorized_replication,
)
from repro.experiments.results import ResultTable
from repro.experiments.io import read_csv, write_csv
from repro.experiments.report import generate_report, table_to_markdown

__all__ = [
    "ExperimentConfig",
    "ReplicatedResult",
    "batched_replication",
    "grid_batched_replication",
    "run_replications",
    "ParameterGrid",
    "run_sweep",
    "sweep_configs",
    "FlatGrid",
    "dynamics_grid_replication",
    "dynamics_point_replication",
    "flatten_grid",
    "NETWORK_ENGINES",
    "NETWORK_REPLICATIONS",
    "build_network",
    "network_batched_replication",
    "network_point_replication",
    "network_vectorized_replication",
    "PROTOCOL_ENGINES",
    "PROTOCOL_REPLICATIONS",
    "protocol_batched_replication",
    "protocol_point_replication",
    "protocol_vectorized_replication",
    "ResultTable",
    "read_csv",
    "write_csv",
    "generate_report",
    "table_to_markdown",
]
