"""Replicated experiment execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.analysis.statistics import ReplicationSummary, summarize_replications
from repro.experiments.config import ExperimentConfig
from repro.utils.rng import seeds_for_replications

ReplicationFunction = Callable[[int, Dict[str, Any]], Dict[str, float]]
"""A replication takes (seed, parameters) and returns a dict of scalar metrics."""


@dataclass
class ReplicatedResult:
    """Metrics from all replications of one experiment configuration."""

    config: ExperimentConfig
    seeds: List[int]
    metrics: List[Dict[str, float]] = field(default_factory=list)

    def metric_values(self, name: str) -> np.ndarray:
        """All replications' values of metric ``name``."""
        missing = [index for index, row in enumerate(self.metrics) if name not in row]
        if missing:
            raise KeyError(
                f"metric '{name}' missing from replications {missing} of "
                f"{self.config.name}"
            )
        return np.array([row[name] for row in self.metrics], dtype=float)

    def metric_names(self) -> List[str]:
        """Names of all metrics present in every replication."""
        if not self.metrics:
            return []
        names = set(self.metrics[0])
        for row in self.metrics[1:]:
            names &= set(row)
        return sorted(names)

    def summarize(self, name: str) -> ReplicationSummary:
        """Replication summary (mean, CI, ...) of metric ``name``."""
        return summarize_replications(self.metric_values(name))

    def summary_row(self) -> Dict[str, Any]:
        """One flat dict: config parameters plus the mean of every metric."""
        row: Dict[str, Any] = dict(self.config.parameters)
        for name in self.metric_names():
            row[name] = float(self.metric_values(name).mean())
        return row


def run_replications(
    config: ExperimentConfig, replication: ReplicationFunction
) -> ReplicatedResult:
    """Run ``config.replications`` independent replications of an experiment.

    Each replication receives its own integer seed derived from
    ``config.seed``, so the whole experiment is reproducible from the config
    alone and individual replications can be re-run in isolation.
    """
    seeds = seeds_for_replications(config.seed, config.replications)
    result = ReplicatedResult(config=config, seeds=seeds)
    for seed in seeds:
        metrics = replication(seed, dict(config.parameters))
        if not isinstance(metrics, dict) or not metrics:
            raise ValueError(
                "replication functions must return a non-empty dict of scalar metrics"
            )
        result.metrics.append({key: float(value) for key, value in metrics.items()})
    return result
