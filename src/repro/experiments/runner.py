"""Replicated experiment execution.

Two execution paths share one entry point (:func:`run_replications`):

* the **per-seed loop** — the replication function is called once per seed,
  each call simulating one replicate; and
* the **batched fast path** — a function decorated with
  :func:`batched_replication` receives the *whole* seed list at once and
  returns one metrics dict per replicate.  Such functions typically drive
  :class:`repro.core.batched.BatchedDynamics`, which advances all replicates
  as one ``(R, m)`` count matrix per step and is more than an order of
  magnitude faster at large ``N`` (see ``benchmarks/test_bench_batched.py``).

Both paths derive the seed list identically from ``config.seed``, so results
stay reproducible from the config alone either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.analysis.statistics import ReplicationSummary, summarize_replications
from repro.experiments.config import ExperimentConfig
from repro.utils.rng import seeds_for_replications

ReplicationFunction = Callable[[int, Dict[str, Any]], Dict[str, float]]
"""A replication takes (seed, parameters) and returns a dict of scalar metrics."""

BatchedReplicationFunction = Callable[
    [Sequence[int], Dict[str, Any]], Sequence[Dict[str, float]]
]
"""A batched replication takes (seeds, parameters) and returns one metrics dict per seed."""

GridReplicationFunction = Callable[
    [Sequence[Sequence[int]], Sequence[Dict[str, Any]]],
    Sequence[Sequence[Dict[str, float]]],
]
"""A grid replication takes (per-point seed lists, per-point parameters) and
returns, for each grid point, one metrics dict per seed."""


def grid_batched_replication(
    function: GridReplicationFunction,
) -> GridReplicationFunction:
    """Mark ``function`` as a whole-grid batched replication for :func:`run_sweep`.

    Where :func:`batched_replication` collapses the replicate axis of *one*
    experiment configuration, a grid replication collapses the sweep axis as
    well: :func:`~repro.experiments.sweep.run_sweep` calls it exactly once
    with the seed lists and parameter dicts of **every** grid point, and the
    function returns one metrics dict per (point, seed) pair — typically by
    flattening all ``G x R`` rows into a single
    :class:`~repro.core.batched.BatchedDynamics` launch with per-row
    parameters.

    The seed lists are derived per point exactly as the per-point paths derive
    them, so switching engines never changes an experiment's provenance.

    Usage::

        @grid_batched_replication
        def replication(seed_blocks, points):
            flat_seeds = [seed for block in seed_blocks for seed in block]
            rng = np.random.default_rng(flat_seeds)
            ...  # one (G*R, m) BatchedDynamics launch
            return [[{"regret": ...} for seed in block] for block in seed_blocks]
    """
    function.grid_replications = True  # type: ignore[attr-defined]
    return function


def batched_replication(
    function: BatchedReplicationFunction,
) -> BatchedReplicationFunction:
    """Mark ``function`` as a batched replication for :func:`run_replications`.

    A batched replication is called once with ``(seeds, parameters)`` — the
    full list of per-replicate seeds — and must return a sequence of exactly
    ``len(seeds)`` metric dicts, one per replicate, in seed order.  The seeds
    identify the batch deterministically (e.g. via
    ``np.random.default_rng(seeds)``); individual replicates inside a batch
    share one generator and are not independently re-runnable.

    Usage::

        @batched_replication
        def replication(seeds, parameters):
            rng = np.random.default_rng(seeds)
            trajectory = simulate_batched_population(..., num_replicates=len(seeds), rng=rng)
            return [{"regret": r} for r in trajectory.expected_regret(qualities)]
    """
    function.batched_replications = True  # type: ignore[attr-defined]
    return function


@dataclass
class ReplicatedResult:
    """Metrics from all replications of one experiment configuration."""

    config: ExperimentConfig
    seeds: List[int]
    metrics: List[Dict[str, float]] = field(default_factory=list)

    def metric_values(self, name: str) -> np.ndarray:
        """All replications' values of metric ``name``."""
        missing = [index for index, row in enumerate(self.metrics) if name not in row]
        if missing:
            raise KeyError(
                f"metric '{name}' missing from replications {missing} of "
                f"{self.config.name}"
            )
        return np.array([row[name] for row in self.metrics], dtype=float)

    def metric_names(self) -> List[str]:
        """Names of all metrics present in every replication."""
        if not self.metrics:
            return []
        names = set(self.metrics[0])
        for row in self.metrics[1:]:
            names &= set(row)
        return sorted(names)

    def summarize(self, name: str) -> ReplicationSummary:
        """Replication summary (mean, CI, ...) of metric ``name``."""
        return summarize_replications(self.metric_values(name))

    def summary_row(self) -> Dict[str, Any]:
        """One flat dict: config parameters plus the mean of every metric."""
        row: Dict[str, Any] = dict(self.config.parameters)
        for name in self.metric_names():
            row[name] = float(self.metric_values(name).mean())
        return row


def _validated_metrics(metrics: Any) -> Dict[str, float]:
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(
            "replication functions must return a non-empty dict of scalar metrics"
        )
    return {key: float(value) for key, value in metrics.items()}


def run_replications(
    config: ExperimentConfig,
    replication: ReplicationFunction,
    *,
    options: Any = None,
    executor: Any = None,
    store: Any = None,
) -> ReplicatedResult:
    """Run ``config.replications`` independent replications of an experiment.

    Each replication receives its own integer seed derived from
    ``config.seed``, so the whole experiment is reproducible from the config
    alone and individual replications can be re-run in isolation.

    If ``replication`` opted in via :func:`batched_replication`, it is called
    once with the full seed list (the batched fast path) instead of once per
    seed; the derived seeds, and therefore the result's provenance record,
    are identical in both modes.

    ``options`` — an :class:`~repro.runtime.options.ExecutionOptions` —
    routes execution through the parallel runtime (:mod:`repro.runtime`):
    its executor (e.g. :class:`~repro.runtime.executors.ParallelExecutor`,
    or any :class:`~repro.runtime.backend.Backend`) shards the per-seed work
    — per-seed functions parallelise seed by seed, batched functions stay
    one indivisible task — and its
    :class:`~repro.runtime.store.ResultStore` serves cache hits and records
    results for resume.  The runtime derives identical seeds, so results are
    bit-identical to the default in-process path.  The legacy ``executor=``/
    ``store=`` keyword arguments still work but emit
    ``DeprecationWarning`` and run the exact same code path.
    """
    if getattr(replication, "grid_replications", False):
        raise TypeError(
            "grid-batched replications run over a whole ParameterGrid; call "
            "run_sweep instead of run_replications"
        )
    if options is not None or executor is not None or store is not None:
        # Imported lazily: repro.runtime depends on this module.
        from repro.runtime.options import resolve_options

        options = resolve_options(
            options, executor=executor, store=store, owner="run_replications"
        )
    if options is not None and options.engine_options:
        config = ExperimentConfig(
            name=config.name,
            parameters=options.merged_parameters(config.parameters),
            replications=config.replications,
            seed=config.seed,
        )
    seeds = seeds_for_replications(config.seed, config.replications)
    result = ReplicatedResult(config=config, seeds=seeds)
    runtime_executor = options.resolve_executor() if options is not None else None
    runtime_store = options.store if options is not None else None
    runtime_tracer = options.tracer if options is not None else None
    if (
        runtime_executor is not None
        or runtime_store is not None
        or runtime_tracer is not None
    ):
        # Imported lazily: repro.runtime depends on this module.
        from repro.runtime import ShardPlan, run_plan

        plan = ShardPlan.from_config(config, replication)
        rows_per_point = run_plan(
            plan,
            replication,
            executor=runtime_executor,
            store=runtime_store,
            tracer=runtime_tracer,
        )
        result.metrics.extend(rows_per_point[0])
        return result
    if getattr(replication, "batched_replications", False):
        rows = list(replication(list(seeds), dict(config.parameters)))
        if len(rows) != len(seeds):
            raise ValueError(
                f"batched replication returned {len(rows)} metric rows for "
                f"{len(seeds)} seeds"
            )
        result.metrics.extend(_validated_metrics(row) for row in rows)
        return result
    for seed in seeds:
        result.metrics.append(
            _validated_metrics(replication(seed, dict(config.parameters)))
        )
    return result
