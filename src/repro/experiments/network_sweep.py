"""Canonical replication functions for the network-restricted dynamics.

These are the workloads behind the ``repro network`` CLI and the E9 topology
experiments: the neighbourhood-restricted dynamics on Bernoulli qualities,
replicated over seeds (and, via :func:`~repro.experiments.sweep.run_sweep`,
over topology/parameter grids).  Three interchangeable execution engines
share one parameter convention:

* :func:`network_point_replication` — the per-agent reference loop
  (:class:`~repro.network.dynamics.NetworkDynamics`, one run per seed);
* :func:`network_vectorized_replication` — the sparse vectorised engine
  (:class:`~repro.network.vectorized.VectorizedNetworkDynamics`), still one
  run per seed but with no Python loop over agents; and
* :func:`network_batched_replication` — the replicate-axis engine
  (:class:`~repro.network.vectorized.BatchedNetworkDynamics`): all ``R``
  replicates advance as one ``(R, N)`` choices matrix on a single shared
  graph (the ``@batched_replication`` fast path of ``run_replications``).

Parameter convention (per grid point, merged with ``base_parameters``):

``qualities``
    Sequence of option qualities ``eta_j`` (required).
``topology``
    Topology family name (required): one of ``complete``, ``ring``, ``grid``,
    ``star``, ``erdos_renyi``, ``barabasi_albert``, ``watts_strogatz``.
``N``
    Number of individuals (required).  ``grid`` uses the nearest
    ``side x side`` square with ``side = round(sqrt(N))``.
``T``
    Horizon (required).
``beta``
    Good-signal adoption probability (default 0.6; symmetric ``alpha``).
``mu``
    Exploration rate (default: the theorem maximum via
    :func:`~repro.core.sampling.default_exploration_rate`).
``graph_seed``
    Seed for the random topology families (default 0) — the graph is part of
    the experiment configuration, so every replicate (and every engine)
    simulates on the *same* graph.
``ring_k`` / ``er_p`` / ``ba_m`` / ``ws_k`` / ``ws_p``
    Optional topology-family parameters (ring half-width, Erdős–Rényi edge
    probability, Barabási–Albert attachments, Watts–Strogatz neighbours and
    rewiring probability); defaults match ``SocialNetwork.standard_suite``.
``backend`` / ``dtype``
    Optional array backend and storage precision (batched engine only; the
    per-seed engines refuse non-default values) — see
    :mod:`repro.experiments.engine_options`.

All engines report the same per-replicate metrics — ``regret`` and
``best_option_share`` — and derive their randomness from the seed lists the
harness hands them, so results are reproducible from the config alone on any
engine.  Seeding conventions: the per-seed engines use the repository's
``(env=seed, dynamics=seed+1)`` convention; the batched engine derives one
generator from the full seed list (shared by environment and dynamics),
matching :func:`~repro.experiments.dynamics_sweep.dynamics_grid_replication`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.regret import best_option_share, expected_regret
from repro.core.sampling import default_exploration_rate
from repro.environments import BernoulliEnvironment
from repro.experiments.engine_options import (
    engine_options,
    require_default_engine_options,
)
from repro.experiments.runner import batched_replication
from repro.network.dynamics import NetworkDynamics, NetworkDynamicsBase
from repro.network.topology import SocialNetwork
from repro.network.vectorized import BatchedNetworkDynamics, VectorizedNetworkDynamics

NETWORK_ENGINES = ("loop", "vectorized", "batched")
"""The interchangeable execution engines for the network workloads."""


@lru_cache(maxsize=8)
def _cached_network(
    topology: str,
    size: int,
    graph_seed: int,
    ring_k: int,
    er_p: float,
    ba_m: int,
    ws_k: int,
    ws_p: float,
) -> SocialNetwork:
    if topology == "complete":
        return SocialNetwork.complete(size)
    if topology == "ring":
        return SocialNetwork.ring(size, neighbors_each_side=ring_k)
    if topology == "grid":
        side = max(2, int(round(np.sqrt(size))))
        return SocialNetwork.grid(side, side)
    if topology == "star":
        return SocialNetwork.star(size)
    if topology == "erdos_renyi":
        return SocialNetwork.erdos_renyi(size, er_p, rng=graph_seed)
    if topology == "barabasi_albert":
        return SocialNetwork.barabasi_albert(size, attachments=ba_m, rng=graph_seed)
    if topology == "watts_strogatz":
        return SocialNetwork.watts_strogatz(
            size, nearest_neighbors=ws_k, rewiring_probability=ws_p, rng=graph_seed
        )
    raise ValueError(
        f"unknown topology {topology!r}; expected one of complete, ring, grid, "
        "star, erdos_renyi, barabasi_albert, watts_strogatz"
    )


def build_network(parameters: Dict[str, Any]) -> SocialNetwork:
    """Construct the :class:`SocialNetwork` a parameter dict describes.

    Deterministic: random families are seeded from ``graph_seed`` (default
    0), so every replicate and every engine sees the same graph.  Recently
    built graphs are cached (keyed on every topology-relevant parameter), so
    the per-seed engines do not pay graph construction — networkx build plus
    the CSR cache — once per replicate; treat the returned network as
    read-only shared state.
    """
    try:
        topology = str(parameters["topology"])
        size = int(parameters["N"])
    except KeyError as error:
        raise KeyError(
            f"network points need 'topology' and 'N'; missing {error}"
        ) from None
    return _cached_network(
        topology,
        size,
        int(parameters.get("graph_seed", 0)),
        int(parameters.get("ring_k", 2)),
        float(parameters.get("er_p", min(1.0, 8.0 / size))),
        int(parameters.get("ba_m", 3)),
        int(parameters.get("ws_k", 6)),
        float(parameters.get("ws_p", 0.1)),
    )


def _point_parameters(
    parameters: Dict[str, Any],
) -> Tuple[np.ndarray, int, float, float]:
    """Extract one point's ``(qualities, T, beta, mu)`` with engine-shared defaults."""
    try:
        qualities = np.asarray(parameters["qualities"], dtype=float)
        horizon = int(parameters["T"])
    except KeyError as error:
        raise KeyError(
            f"network points need 'qualities' and 'T'; missing {error}"
        ) from None
    beta = float(parameters.get("beta", 0.6))
    mu = parameters.get("mu")
    if mu is None:
        mu = default_exploration_rate(SymmetricAdoptionRule(beta))
    return qualities, horizon, beta, float(mu)


def _metric_row(matrix: np.ndarray, qualities: np.ndarray) -> Dict[str, float]:
    best = int(qualities.argmax())
    return {
        "regret": float(expected_regret(matrix, qualities)),
        "best_option_share": float(best_option_share(matrix, best)),
    }


def _run_single(
    dynamics_class, seed: int, parameters: Dict[str, Any]
) -> Dict[str, float]:
    require_default_engine_options(parameters, "per-seed")
    qualities, horizon, beta, mu = _point_parameters(parameters)
    network = build_network(parameters)
    environment = BernoulliEnvironment(qualities, rng=seed)
    dynamics: NetworkDynamicsBase = dynamics_class(
        network=network,
        num_options=int(qualities.size),
        adoption_rule=SymmetricAdoptionRule(beta),
        exploration_rate=mu,
        rng=seed + 1,
    )
    trajectory = dynamics.run(environment, horizon)
    return _metric_row(trajectory.popularity_matrix(), qualities)


def network_point_replication(
    seed: int, parameters: Dict[str, Any]
) -> Dict[str, float]:
    """Per-seed loop engine (the ``--engine loop`` reference path)."""
    return _run_single(NetworkDynamics, seed, parameters)


def network_vectorized_replication(
    seed: int, parameters: Dict[str, Any]
) -> Dict[str, float]:
    """Per-seed sparse vectorised engine — one run per seed, no per-agent loop."""
    return _run_single(VectorizedNetworkDynamics, seed, parameters)


@batched_replication
def network_batched_replication(
    seeds: Sequence[int], parameters: Dict[str, Any]
) -> List[Dict[str, float]]:
    """All replicates as one ``(R, N)`` launch on a single shared graph.

    One generator, seeded by the full seed list, drives both the reward
    draws and the batched dynamics — the batch is reproducible from the
    config alone, while individual replicates inside it share the stream
    (the standard batched-engine trade-off).
    """
    qualities, horizon, beta, mu = _point_parameters(parameters)
    backend, dtype = engine_options(parameters)
    network = build_network(parameters)
    generator = np.random.default_rng(list(seeds))
    environment = BernoulliEnvironment(qualities, rng=generator)
    dynamics = BatchedNetworkDynamics(
        network=network,
        num_options=int(qualities.size),
        num_replicates=len(seeds),
        adoption_rule=SymmetricAdoptionRule(beta),
        exploration_rate=mu,
        rng=generator,
        backend=backend,
        precision=dtype,
    )
    trajectory = dynamics.run(environment, horizon)
    regrets = trajectory.expected_regret(qualities)
    shares = trajectory.best_option_share(int(qualities.argmax()))
    return [
        {"regret": float(regret), "best_option_share": float(share)}
        for regret, share in zip(regrets, shares)
    ]


NETWORK_REPLICATIONS = {
    "loop": network_point_replication,
    "vectorized": network_vectorized_replication,
    "batched": network_batched_replication,
}
"""Engine name -> replication function, for the CLI and sweep wiring."""
