"""Experiment configuration objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.utils.validation import check_non_negative_int, check_positive_int


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one experiment run.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"E1-infinite-regret"``).
    parameters:
        Free-form parameter mapping recorded alongside results.
    replications:
        Number of independent replications.
    seed:
        Master seed from which per-replication seeds are derived.
    """

    name: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    replications: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        check_positive_int(self.replications, "replications")
        check_non_negative_int(self.seed, "seed")

    def with_parameters(self, **overrides: Any) -> "ExperimentConfig":
        """Copy of this config with some parameters overridden."""
        merged = dict(self.parameters)
        merged.update(overrides)
        return ExperimentConfig(
            name=self.name,
            parameters=merged,
            replications=self.replications,
            seed=self.seed,
        )

    def describe(self) -> str:
        """One-line human-readable description used in benchmark output."""
        parameter_string = ", ".join(
            f"{key}={value}" for key, value in sorted(self.parameters.items())
        )
        return f"{self.name} [{parameter_string}] x{self.replications} (seed={self.seed})"
