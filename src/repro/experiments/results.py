"""Flat result tables shared by benchmarks and examples."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.utils.ascii_plot import format_table


class ResultTable:
    """An ordered collection of flat result rows (dicts of scalars/strings).

    A thin wrapper over a list of dicts that keeps column order stable,
    renders aligned text (what the benchmarks print, mirroring the paper's
    tables) and exports CSV via :func:`repro.experiments.io.write_csv`.
    """

    def __init__(self, rows: Optional[Sequence[Dict[str, Any]]] = None) -> None:
        self._rows: List[Dict[str, Any]] = []
        self._columns: List[str] = []
        for row in rows or []:
            self.add_row(row)

    def add_row(self, row: Dict[str, Any]) -> None:
        """Append a row, extending the column set with any new keys."""
        if not isinstance(row, dict) or not row:
            raise ValueError("rows must be non-empty dicts")
        for key in row:
            if key not in self._columns:
                self._columns.append(key)
        self._rows.append(dict(row))

    @property
    def columns(self) -> List[str]:
        """Column names in first-seen order."""
        return list(self._columns)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """All rows (copies)."""
        return [dict(row) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        """All values of one column (``None`` where a row lacks the key)."""
        if name not in self._columns:
            raise KeyError(f"unknown column '{name}'")
        return [row.get(name) for row in self._rows]

    def filter(self, **criteria: Any) -> "ResultTable":
        """Rows matching all equality criteria, as a new table."""
        matching = [
            row
            for row in self._rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultTable(matching)

    def sort_by(self, *columns: str, reverse: bool = False) -> "ResultTable":
        """New table with rows sorted by the given columns."""
        for column in columns:
            if column not in self._columns:
                raise KeyError(f"unknown column '{column}'")
        ordered = sorted(
            self._rows,
            key=lambda row: tuple(row.get(column) for column in columns),
            reverse=reverse,
        )
        return ResultTable(ordered)

    def to_text(self, float_format: str = "{:.4f}") -> str:
        """Aligned text rendering of the table."""
        return format_table(self._rows, self._columns, float_format=float_format)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()
