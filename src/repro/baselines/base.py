"""Common interface for all baseline learners."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class GroupLearner(abc.ABC):
    """A learner whose state at each step is a distribution over options.

    The distribution is interpreted as "the fraction of the group currently
    committed to each option" (for population-style learners) or "the mixed
    strategy of the single decision maker" (for centralised learners such as
    MWU).  Either way, the group's expected reward at step ``t`` is
    ``<distribution^{t-1}, R^t>`` and the regret functions in
    :mod:`repro.core.regret` apply unchanged, which is what makes the
    comparison in experiment E7 like-for-like.

    Subclasses implement :meth:`distribution` (the pre-step distribution) and
    :meth:`update` (consume the step's reward vector).  ``update`` receives the
    *full* reward vector; learners that model partial observability (the
    bandit baselines) must only read the entries their agents actually pulled.
    """

    def __init__(self, num_options: int, rng: RngLike = None) -> None:
        self._num_options = check_positive_int(num_options, "num_options")
        self._rng = ensure_rng(rng)
        self._time = 0

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def time(self) -> int:
        """Number of updates consumed so far."""
        return self._time

    @property
    def name(self) -> str:
        """Human-readable name used in benchmark tables."""
        return type(self).__name__

    @abc.abstractmethod
    def distribution(self) -> np.ndarray:
        """Current distribution over options (probability vector of length ``m``)."""

    @abc.abstractmethod
    def _update(self, rewards: np.ndarray) -> None:
        """Consume the reward vector for one step and update internal state."""

    def update(self, rewards: np.ndarray) -> None:
        """Validate the reward vector and advance the learner one step."""
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")
        self._update(rewards.astype(np.int8))
        self._time += 1

    def run_on_rewards(self, rewards: np.ndarray) -> np.ndarray:
        """Run on a ``(T, m)`` reward matrix; return the ``(T, m)`` pre-step distributions."""
        rewards = np.asarray(rewards)
        if rewards.ndim != 2 or rewards.shape[1] != self._num_options:
            raise ValueError(
                f"rewards must have shape (T, {self._num_options}), got {rewards.shape}"
            )
        distributions = np.zeros(rewards.shape, dtype=float)
        for step, reward_vector in enumerate(rewards):
            distributions[step] = self.distribution()
            self.update(reward_vector)
        return distributions

    def run(self, environment: RewardEnvironment, horizon: int) -> np.ndarray:
        """Run against a live environment for ``horizon`` steps."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError("environment and learner disagree on the number of options")
        return self.run_on_rewards(environment.sample_many(horizon))

    def reset(self, rng: Optional[RngLike] = None) -> None:
        """Restore the learner to its initial state (optionally reseeding)."""
        if rng is not None:
            self._rng = ensure_rng(rng)
        self._time = 0
        self._reset()

    def _reset(self) -> None:
        """Subclass hook for :meth:`reset`; default is a no-op."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(m={self._num_options})"
