"""Classic (deterministic-update) multiplicative weights baselines.

Two standard parameterisations are provided:

* :class:`ClassicMWU` — the ``w_j <- w_j * (1 + eps)^{r_j}`` form of Arora,
  Hazan, Kale (2012), which is the method the paper's infinite-population
  dynamics is shown to be a stochastic variant of;
* :class:`HedgeMWU` — the exponential-weights form ``w_j <- w_j * exp(eta r_j)``.

Unlike the paper's dynamics these are full-information, centralised
algorithms: a single entity stores the entire weight vector and observes the
reward of *every* option each step.  They are the "what you could do with
unlimited memory and communication" upper baseline of experiment E7.
"""

from __future__ import annotations


import numpy as np

from repro.baselines.base import GroupLearner
from repro.utils.rng import RngLike
from repro.utils.validation import check_in_range


class ClassicMWU(GroupLearner):
    """Multiplicative weights with ``w_j <- w_j * (1 + eps)^{r_j}``.

    Parameters
    ----------
    num_options:
        Number of options ``m``.
    epsilon:
        Learning rate ``eps`` in ``(0, 1]``.  With rewards in ``[0, 1]`` the
        standard bound gives average regret ``ln(m)/(eps T) + eps``.
    rng:
        Unused (the update is deterministic); accepted for interface symmetry.
    """

    def __init__(self, num_options: int, epsilon: float = 0.1, rng: RngLike = None) -> None:
        super().__init__(num_options, rng=rng)
        self._epsilon = check_in_range(
            epsilon, "epsilon", 0.0, 1.0, inclusive_low=False
        )
        self._log_weights = np.zeros(num_options)

    @property
    def epsilon(self) -> float:
        """The learning rate ``eps``."""
        return self._epsilon

    @property
    def name(self) -> str:
        return f"ClassicMWU(eps={self._epsilon:g})"

    def distribution(self) -> np.ndarray:
        shifted = self._log_weights - self._log_weights.max()
        weights = np.exp(shifted)
        return weights / weights.sum()

    def _update(self, rewards: np.ndarray) -> None:
        self._log_weights += rewards * np.log1p(self._epsilon)

    def _reset(self) -> None:
        self._log_weights = np.zeros(self._num_options)

    @classmethod
    def tuned(cls, num_options: int, horizon: int) -> "ClassicMWU":
        """Instance with the horizon-optimal rate ``eps = sqrt(ln(m)/T)`` (clipped to (0, 1])."""
        epsilon = float(np.sqrt(np.log(max(num_options, 2)) / max(horizon, 1)))
        return cls(num_options, epsilon=min(max(epsilon, 1e-4), 1.0))


class HedgeMWU(GroupLearner):
    """Exponential weights (Hedge): ``w_j <- w_j * exp(eta * r_j)``.

    Parameters
    ----------
    num_options:
        Number of options ``m``.
    eta:
        Learning rate; defaults to the anytime-reasonable ``sqrt(ln m)``-free
        value 0.2, and :meth:`tuned` gives the horizon-optimal rate.
    """

    def __init__(self, num_options: int, eta: float = 0.2, rng: RngLike = None) -> None:
        super().__init__(num_options, rng=rng)
        if eta <= 0:
            raise ValueError(f"eta must be positive, got {eta}")
        self._eta = float(eta)
        self._log_weights = np.zeros(num_options)

    @property
    def eta(self) -> float:
        """The learning rate ``eta``."""
        return self._eta

    @property
    def name(self) -> str:
        return f"HedgeMWU(eta={self._eta:g})"

    def distribution(self) -> np.ndarray:
        shifted = self._log_weights - self._log_weights.max()
        weights = np.exp(shifted)
        return weights / weights.sum()

    def _update(self, rewards: np.ndarray) -> None:
        self._log_weights += self._eta * rewards

    def _reset(self) -> None:
        self._log_weights = np.zeros(self._num_options)

    @classmethod
    def tuned(cls, num_options: int, horizon: int) -> "HedgeMWU":
        """Instance with ``eta = sqrt(8 ln(m) / T)``, the classic Hedge tuning."""
        eta = float(np.sqrt(8.0 * np.log(max(num_options, 2)) / max(horizon, 1)))
        return cls(num_options, eta=max(eta, 1e-4))
