"""Baseline learners the paper's dynamics is compared against (experiment E7).

The paper positions the social learning dynamics relative to two families of
algorithms:

* the **classic multiplicative weights update** (MWU) method and its
  continuous-time limit, the replicator dynamics — full-information,
  centralised algorithms in which a single entity maintains a weight per
  option (:class:`ClassicMWU`, :class:`ReplicatorDynamics`); and
* **per-individual bandit algorithms** — each group member independently runs
  a stochastic bandit strategy using only its own observations
  (:class:`IndividualUCB`, :class:`IndividualEpsilonGreedy`,
  :class:`IndividualThompsonSampling`).

Simple controls round out the comparison: :class:`FollowTheCrowd` (imitation
with no quality signal), :class:`UniformRandomChoice` and
:class:`BestFixedOptionOracle` (the hindsight benchmark regret is measured
against).

All baselines implement the :class:`GroupLearner` interface so they can be run
on the *same recorded reward sequences* as the paper's dynamics and scored
with the same regret functions.
"""

from repro.baselines.base import GroupLearner
from repro.baselines.mwu import ClassicMWU, HedgeMWU
from repro.baselines.exp3 import Exp3
from repro.baselines.replicator import ReplicatorDynamics
from repro.baselines.bandits import (
    IndividualEpsilonGreedy,
    IndividualThompsonSampling,
    IndividualUCB,
)
from repro.baselines.simple import (
    BestFixedOptionOracle,
    FollowTheCrowd,
    UniformRandomChoice,
)
from repro.baselines.social import SocialLearningBaseline

__all__ = [
    "GroupLearner",
    "ClassicMWU",
    "HedgeMWU",
    "Exp3",
    "ReplicatorDynamics",
    "IndividualUCB",
    "IndividualEpsilonGreedy",
    "IndividualThompsonSampling",
    "FollowTheCrowd",
    "UniformRandomChoice",
    "BestFixedOptionOracle",
    "SocialLearningBaseline",
]
