"""EXP3: the classic adversarial-bandit baseline.

The paper's conclusion notes that an *individual* in the group is effectively
facing a stochastic multi-armed bandit problem (it only ever observes the
signal of the single option it considered), while the *population* enjoys
full information.  EXP3 (Auer, Cesa-Bianchi, Freund, Schapire 2002) is the
canonical algorithm for the bandit-feedback setting, so it provides the
"what a single centralised learner could do with only bandit feedback"
comparison point in experiment E7's extended table: the group dynamics should
beat it, because the group implicitly aggregates m signals per step.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GroupLearner
from repro.utils.rng import RngLike
from repro.utils.validation import check_in_range


class Exp3(GroupLearner):
    """EXP3 with the standard uniform-mixing exploration term.

    The learner samples one arm per step from its mixed strategy, observes the
    reward of that arm only, forms the importance-weighted reward estimate and
    updates exponential weights.  The ``distribution()`` reported for regret
    accounting is the mixed strategy before the step, so comparisons against
    the population dynamics (whose popularity vector plays the same role)
    are like-for-like.

    Parameters
    ----------
    num_options:
        Number of arms ``m``.
    gamma:
        Exploration/mixing parameter in ``(0, 1]``.
    rng:
        Seed or generator (drives the arm draws).
    """

    def __init__(self, num_options: int, gamma: float = 0.1, rng: RngLike = None) -> None:
        super().__init__(num_options, rng=rng)
        self._gamma = check_in_range(gamma, "gamma", 0.0, 1.0, inclusive_low=False)
        self._log_weights = np.zeros(num_options)
        self._last_arm: int | None = None

    @property
    def gamma(self) -> float:
        """The exploration parameter."""
        return self._gamma

    @property
    def name(self) -> str:
        return f"EXP3(gamma={self._gamma:g})"

    @property
    def last_arm(self) -> int | None:
        """The arm pulled in the most recent update (None before any update)."""
        return self._last_arm

    def distribution(self) -> np.ndarray:
        shifted = self._log_weights - self._log_weights.max()
        weights = np.exp(shifted)
        probabilities = weights / weights.sum()
        return (1.0 - self._gamma) * probabilities + self._gamma / self._num_options

    def _update(self, rewards: np.ndarray) -> None:
        probabilities = self.distribution()
        arm = int(self._rng.choice(self._num_options, p=probabilities))
        self._last_arm = arm
        observed = float(rewards[arm])  # bandit feedback: only the pulled arm
        estimated_reward = observed / probabilities[arm]
        self._log_weights[arm] += (
            self._gamma * estimated_reward / self._num_options
        )

    def _reset(self) -> None:
        self._log_weights = np.zeros(self._num_options)
        self._last_arm = None

    @classmethod
    def tuned(cls, num_options: int, horizon: int, rng: RngLike = None) -> "Exp3":
        """Instance with the horizon-optimal ``gamma = min(1, sqrt(m ln m / ((e-1) T)))``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        m = max(num_options, 2)
        gamma = float(
            np.sqrt(m * np.log(m) / ((np.e - 1.0) * horizon))
        )
        return cls(num_options, gamma=min(max(gamma, 1e-3), 1.0), rng=rng)
