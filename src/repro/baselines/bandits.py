"""Per-individual stochastic bandit baselines.

The paper contrasts its memoryless social dynamics with what an individual
could achieve by running a full stochastic bandit algorithm on its own
observations (Section 3 and the conclusion: "while an individual can be
effectively solving a stochastic multi-armed bandit problem, the population as
a whole is solving a full-information version").  These baselines simulate a
group of ``N`` individuals each independently running a bandit strategy —
UCB1, epsilon-greedy or Thompson sampling — observing only the reward of the
single arm they pulled.  The group distribution reported to the regret
machinery is the empirical fraction of individuals on each option, exactly as
for the paper's dynamics, so comparisons are apples-to-apples.

Each individual here stores per-arm counts and estimates — the memory the
paper's protocol conspicuously does not need.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GroupLearner
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int, check_probability


class _PerAgentBandit(GroupLearner):
    """Shared machinery: N agents, per-agent pull counts and success counts."""

    def __init__(self, num_options: int, population_size: int, rng: RngLike = None) -> None:
        super().__init__(num_options, rng=rng)
        self._population_size = check_positive_int(population_size, "population_size")
        # counts[i, j]: number of times agent i pulled arm j; successes likewise.
        self._counts = np.zeros((population_size, num_options), dtype=np.int64)
        self._successes = np.zeros((population_size, num_options), dtype=np.int64)
        self._current_arms = self._rng.integers(
            num_options, size=population_size
        ).astype(np.int64)

    @property
    def population_size(self) -> int:
        """Number of simulated individuals ``N``."""
        return self._population_size

    def distribution(self) -> np.ndarray:
        counts = np.bincount(self._current_arms, minlength=self._num_options)
        return counts / self._population_size

    def _choose_arms(self) -> np.ndarray:
        """Return the arm each agent pulls this step (length ``N``)."""
        raise NotImplementedError

    def _update(self, rewards: np.ndarray) -> None:
        arms = self._choose_arms()
        observed = rewards[arms]
        agent_index = np.arange(self._population_size)
        self._counts[agent_index, arms] += 1
        self._successes[agent_index, arms] += observed
        self._current_arms = arms

    def _reset(self) -> None:
        self._counts[:] = 0
        self._successes[:] = 0
        self._current_arms = self._rng.integers(
            self._num_options, size=self._population_size
        ).astype(np.int64)


class IndividualUCB(_PerAgentBandit):
    """Every individual runs UCB1 on its own observations.

    Arms never pulled by an agent have an infinite index (forced exploration);
    otherwise the index is ``mean + sqrt(2 ln(t) / pulls)``.

    Parameters
    ----------
    num_options, population_size:
        Problem size.
    exploration_constant:
        Multiplier on the confidence radius (``sqrt(2)`` in textbook UCB1).
    """

    def __init__(
        self,
        num_options: int,
        population_size: int,
        exploration_constant: float = np.sqrt(2.0),
        rng: RngLike = None,
    ) -> None:
        super().__init__(num_options, population_size, rng=rng)
        if exploration_constant <= 0:
            raise ValueError("exploration_constant must be positive")
        self._exploration_constant = float(exploration_constant)

    @property
    def name(self) -> str:
        return f"IndividualUCB(N={self._population_size})"

    def _choose_arms(self) -> np.ndarray:
        total_pulls = self._time + 1
        with np.errstate(divide="ignore", invalid="ignore"):
            means = np.where(
                self._counts > 0, self._successes / np.maximum(self._counts, 1), 0.0
            )
            radius = self._exploration_constant * np.sqrt(
                np.log(total_pulls + 1) / np.maximum(self._counts, 1)
            )
            index = means + radius
        index = np.where(self._counts == 0, np.inf, index)
        # Random tie-breaking: add tiny noise before argmax.
        noise = self._rng.random(index.shape) * 1e-9
        return np.argmax(index + noise, axis=1).astype(np.int64)


class IndividualEpsilonGreedy(_PerAgentBandit):
    """Every individual runs epsilon-greedy on its own observations.

    Parameters
    ----------
    epsilon:
        Per-step exploration probability.
    """

    def __init__(
        self,
        num_options: int,
        population_size: int,
        epsilon: float = 0.1,
        rng: RngLike = None,
    ) -> None:
        super().__init__(num_options, population_size, rng=rng)
        self._epsilon = check_probability(epsilon, "epsilon")

    @property
    def name(self) -> str:
        return f"IndividualEpsGreedy(eps={self._epsilon:g}, N={self._population_size})"

    def _choose_arms(self) -> np.ndarray:
        means = np.where(
            self._counts > 0, self._successes / np.maximum(self._counts, 1), 0.5
        )
        noise = self._rng.random(means.shape) * 1e-9
        greedy = np.argmax(means + noise, axis=1)
        explore = self._rng.random(self._population_size) < self._epsilon
        random_arms = self._rng.integers(self._num_options, size=self._population_size)
        return np.where(explore, random_arms, greedy).astype(np.int64)


class IndividualThompsonSampling(_PerAgentBandit):
    """Every individual runs Beta-Bernoulli Thompson sampling on its own observations.

    Parameters
    ----------
    prior_successes, prior_failures:
        Beta prior pseudo-counts (default uniform prior Beta(1, 1)).
    """

    def __init__(
        self,
        num_options: int,
        population_size: int,
        prior_successes: float = 1.0,
        prior_failures: float = 1.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__(num_options, population_size, rng=rng)
        if prior_successes <= 0 or prior_failures <= 0:
            raise ValueError("prior pseudo-counts must be positive")
        self._prior_successes = float(prior_successes)
        self._prior_failures = float(prior_failures)

    @property
    def name(self) -> str:
        return f"IndividualThompson(N={self._population_size})"

    def _choose_arms(self) -> np.ndarray:
        failures = self._counts - self._successes
        samples = self._rng.beta(
            self._successes + self._prior_successes,
            failures + self._prior_failures,
        )
        return np.argmax(samples, axis=1).astype(np.int64)
