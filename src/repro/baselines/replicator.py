"""Discrete-time replicator dynamics baseline.

The replicator dynamics is the continuous-time limit of MWU (Section 3 of the
paper).  The discrete-time version used here updates the population share of
option ``j`` proportionally to its fitness estimate:

    ``x_j <- x_j * (baseline + payoff_j) / (baseline + <x, payoff>)``

where ``payoff_j`` is either the realised binary reward (``smoothing = 0``) or
an exponentially smoothed estimate of it.  An exploration floor ``mu`` mirrors
the paper's regularisation and keeps every option's share positive.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GroupLearner
from repro.utils.rng import RngLike
from repro.utils.validation import check_probability


class ReplicatorDynamics(GroupLearner):
    """Deterministic replicator update on (optionally smoothed) realised rewards.

    Parameters
    ----------
    num_options:
        Number of options ``m``.
    baseline_fitness:
        Constant added to payoffs so fitness stays positive (selection
        strength is ``1 / (1 + baseline_fitness)``).
    smoothing:
        Exponential smoothing coefficient for the payoff estimate in
        ``[0, 1)``; ``0`` uses the raw rewards of the current step.
    exploration_rate:
        Mixing weight toward the uniform distribution applied after each
        update (keeps shares bounded away from zero, as ``mu`` does in the
        paper).
    """

    def __init__(
        self,
        num_options: int,
        baseline_fitness: float = 1.0,
        smoothing: float = 0.0,
        exploration_rate: float = 0.01,
        rng: RngLike = None,
    ) -> None:
        super().__init__(num_options, rng=rng)
        if baseline_fitness < 0:
            raise ValueError(f"baseline_fitness must be non-negative, got {baseline_fitness}")
        self._baseline = float(baseline_fitness)
        self._smoothing = check_probability(smoothing, "smoothing")
        if self._smoothing >= 1.0:
            raise ValueError("smoothing must be strictly less than 1")
        self._mu = check_probability(exploration_rate, "exploration_rate")
        self._shares = np.full(num_options, 1.0 / num_options)
        self._payoff_estimate = np.zeros(num_options)

    @property
    def name(self) -> str:
        return f"Replicator(mu={self._mu:g})"

    def distribution(self) -> np.ndarray:
        return self._shares.copy()

    def _update(self, rewards: np.ndarray) -> None:
        if self._smoothing > 0:
            self._payoff_estimate = (
                self._smoothing * self._payoff_estimate
                + (1.0 - self._smoothing) * rewards
            )
            payoff = self._payoff_estimate
        else:
            payoff = rewards.astype(float)
        fitness = self._baseline + payoff
        mean_fitness = float(self._shares @ fitness)
        if mean_fitness <= 0:
            return
        updated = self._shares * fitness / mean_fitness
        updated = (1.0 - self._mu) * updated + self._mu / self._num_options
        self._shares = updated / updated.sum()

    def _reset(self) -> None:
        self._shares = np.full(self._num_options, 1.0 / self._num_options)
        self._payoff_estimate = np.zeros(self._num_options)
