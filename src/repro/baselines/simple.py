"""Simple control baselines.

* :class:`BestFixedOptionOracle` — always plays the true best option; its
  average reward is (up to sampling noise) ``eta_1``, the benchmark in the
  paper's regret definition.
* :class:`UniformRandomChoice` — the zero-learning control.
* :class:`FollowTheCrowd` — imitation with *no* quality signal: a finite
  population where each individual copies a uniformly random group member
  (plus a small exploration rate).  This is the "sampling-only" end of the
  ablation spectrum and illustrates the herding failure mode the paper argues
  the adoption stage prevents.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import GroupLearner
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int, check_probability


class BestFixedOptionOracle(GroupLearner):
    """Plays the known best option every step (the hindsight comparator)."""

    def __init__(self, num_options: int, best_option: int, rng: RngLike = None) -> None:
        super().__init__(num_options, rng=rng)
        if not 0 <= best_option < num_options:
            raise ValueError(
                f"best_option {best_option} out of range for m={num_options}"
            )
        self._best_option = int(best_option)

    @property
    def best_option(self) -> int:
        """The option the oracle plays."""
        return self._best_option

    @property
    def name(self) -> str:
        return "BestFixedOption"

    def distribution(self) -> np.ndarray:
        distribution = np.zeros(self._num_options)
        distribution[self._best_option] = 1.0
        return distribution

    def _update(self, rewards: np.ndarray) -> None:
        # The oracle never changes its mind.
        return None

    @classmethod
    def for_qualities(cls, qualities: Sequence[float], rng: RngLike = None) -> "BestFixedOptionOracle":
        """Build the oracle for a known quality vector."""
        qualities = np.asarray(qualities, dtype=float)
        return cls(qualities.size, int(np.argmax(qualities)), rng=rng)


class UniformRandomChoice(GroupLearner):
    """Every individual picks an option uniformly at random each step."""

    @property
    def name(self) -> str:
        return "UniformRandom"

    def distribution(self) -> np.ndarray:
        return np.full(self._num_options, 1.0 / self._num_options)

    def _update(self, rewards: np.ndarray) -> None:
        return None


class FollowTheCrowd(GroupLearner):
    """Pure imitation in a finite population: copy a random member, ignore signals.

    Each step every one of the ``N`` individuals adopts the option of a
    uniformly random individual from the previous step (with probability
    ``exploration_rate`` it instead picks uniformly at random).  Because no
    quality information enters, the process drifts toward consensus on an
    arbitrary option — the herding behaviour the paper's two-stage dynamics is
    designed to avoid.

    Parameters
    ----------
    num_options, population_size:
        Problem size.
    exploration_rate:
        Probability of picking a uniformly random option instead of copying.
    """

    def __init__(
        self,
        num_options: int,
        population_size: int,
        exploration_rate: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        super().__init__(num_options, rng=rng)
        self._population_size = check_positive_int(population_size, "population_size")
        self._mu = check_probability(exploration_rate, "exploration_rate")
        base, remainder = divmod(self._population_size, num_options)
        counts = np.full(num_options, base, dtype=np.int64)
        counts[:remainder] += 1
        self._counts = counts

    @property
    def population_size(self) -> int:
        """Number of individuals ``N``."""
        return self._population_size

    @property
    def name(self) -> str:
        return f"FollowTheCrowd(N={self._population_size})"

    def distribution(self) -> np.ndarray:
        return self._counts / self._population_size

    def _update(self, rewards: np.ndarray) -> None:
        popularity = self.distribution()
        probabilities = (1.0 - self._mu) * popularity + self._mu / self._num_options
        probabilities = probabilities / probabilities.sum()
        self._counts = self._rng.multinomial(self._population_size, probabilities)

    def _reset(self) -> None:
        base, remainder = divmod(self._population_size, self._num_options)
        counts = np.full(self._num_options, base, dtype=np.int64)
        counts[:remainder] += 1
        self._counts = counts
