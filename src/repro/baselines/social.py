"""The paper's own dynamics wrapped in the :class:`GroupLearner` interface.

:class:`SocialLearningBaseline` lets experiment code treat the paper's
finite-population distributed learning dynamics as just another entry in a
list of learners to compare on a shared reward sequence — which is exactly how
experiment E7 (baseline comparison) and E6 (stage ablations) are written.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import GroupLearner
from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling, SamplingRule
from repro.utils.rng import RngLike


class SocialLearningBaseline(GroupLearner):
    """Adapter exposing :class:`FinitePopulationDynamics` as a :class:`GroupLearner`.

    Parameters
    ----------
    num_options, population_size:
        Problem size.
    adoption_rule:
        The adoption stage; defaults to the symmetric rule with ``beta = 0.6``.
    sampling_rule:
        The sampling stage; defaults to the theorem-maximal exploration rate
        ``mu = delta^2 / 6``.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        num_options: int,
        population_size: int,
        adoption_rule: Optional[AdoptionRule] = None,
        sampling_rule: Optional[SamplingRule] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(num_options, rng=rng)
        adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        if sampling_rule is None:
            delta = adoption_rule.delta
            mu = min(1.0, delta**2 / 6.0) if np.isfinite(delta) and delta > 0 else 0.01
            sampling_rule = MixtureSampling(mu)
        self._dynamics = FinitePopulationDynamics(
            population_size=population_size,
            num_options=num_options,
            adoption_rule=adoption_rule,
            sampling_rule=sampling_rule,
            rng=self._rng,
        )

    @property
    def dynamics(self) -> FinitePopulationDynamics:
        """The wrapped finite-population dynamics."""
        return self._dynamics

    @property
    def name(self) -> str:
        beta = self._dynamics.adoption_rule.beta
        mu = self._dynamics.sampling_rule.exploration_rate
        return (
            f"SocialLearning(N={self._dynamics.population_size}, "
            f"beta={beta:g}, mu={mu:g})"
        )

    def distribution(self) -> np.ndarray:
        return self._dynamics.popularity()

    def _update(self, rewards: np.ndarray) -> None:
        self._dynamics.step(rewards)

    def _reset(self) -> None:
        self._dynamics.reset(rng=self._rng)
