"""Agent-level substrate: individuals, their adoption behaviour and populations.

The paper's dynamics is essentially memoryless at the individual level: an
agent carries only its current choice (or "sitting out") from one step to the
next, plus its personal adoption function ``f_i`` parameterised by
``(alpha_i, beta_i)``.  :class:`Agent` models exactly that;
:class:`Population` groups agents and exposes the aggregate popularity vector
the sampling stage needs.

The fast vectorised simulator in :mod:`repro.core.dynamics` does not use these
objects (it works directly on per-option counts); the agent-based simulator in
:mod:`repro.core.dynamics` does, and the two are cross-validated in the test
suite.  Heterogeneous populations (per-agent ``f_i``, which the paper notes
its results tolerate) are only expressible through this substrate.
"""

from repro.agents.agent import Agent
from repro.agents.population import Population

__all__ = ["Agent", "Population"]
