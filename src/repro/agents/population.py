"""Populations of agents and helpers to construct them."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.agents.agent import Agent
from repro.core.adoption import AdoptionRule, GeneralAdoptionRule, SymmetricAdoptionRule
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class Population:
    """A finite group of :class:`~repro.agents.agent.Agent` objects.

    Provides the aggregate views the sampling stage needs (per-option adoption
    counts and the popularity distribution ``Q^t``) and constructors for the
    common population types.

    Parameters
    ----------
    agents:
        The member agents.  Their ``agent_id`` fields must be
        ``0 .. len(agents) - 1`` in order.
    num_options:
        Number of options ``m`` the population chooses among.
    """

    def __init__(self, agents: Sequence[Agent], num_options: int) -> None:
        self._num_options = check_positive_int(num_options, "num_options")
        agents = list(agents)
        if not agents:
            raise ValueError("a population needs at least one agent")
        for index, agent in enumerate(agents):
            if not isinstance(agent, Agent):
                raise TypeError("agents must contain Agent instances")
            if agent.agent_id != index:
                raise ValueError(
                    f"agent at position {index} has id {agent.agent_id}; ids must "
                    "be consecutive from 0"
                )
            if agent.current_option is not None and agent.current_option >= num_options:
                raise ValueError(
                    f"agent {index} holds option {agent.current_option} but there "
                    f"are only {num_options} options"
                )
        self._agents = agents

    # ------------------------------------------------------------------ views
    @property
    def size(self) -> int:
        """Number of individuals ``N``."""
        return len(self._agents)

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def agents(self) -> List[Agent]:
        """The member agents (the live list; mutating an agent mutates the population)."""
        return self._agents

    def __len__(self) -> int:
        return len(self._agents)

    def __iter__(self):
        return iter(self._agents)

    def __getitem__(self, index: int) -> Agent:
        return self._agents[index]

    def option_counts(self) -> np.ndarray:
        """Per-option adoption counts ``D^t_j`` (sitting-out agents excluded)."""
        counts = np.zeros(self._num_options, dtype=np.int64)
        for agent in self._agents:
            if agent.current_option is not None:
                counts[agent.current_option] += 1
        return counts

    def committed_count(self) -> int:
        """Number of agents currently holding an option."""
        return int(sum(1 for agent in self._agents if agent.is_committed()))

    def popularity(self) -> np.ndarray:
        """Popularity distribution ``Q^t_j = D^t_j / sum_k D^t_k``.

        Falls back to the uniform distribution when nobody is committed (the
        same convention the vectorised simulator and the paper's
        initialisation ``Q^0_j = 1/m`` use).
        """
        counts = self.option_counts()
        total = counts.sum()
        if total == 0:
            return np.full(self._num_options, 1.0 / self._num_options)
        return counts / total

    # ---------------------------------------------------------- constructors
    @classmethod
    def homogeneous(
        cls,
        size: int,
        num_options: int,
        *,
        beta: float = 0.6,
        alpha: Optional[float] = None,
        seed_options: bool = True,
        rng: RngLike = None,
    ) -> "Population":
        """Build ``size`` identical agents with adoption parameters ``(alpha, beta)``.

        With ``alpha=None`` the paper's symmetric convention ``alpha = 1 - beta``
        is used.  When ``seed_options`` is true, initial options are assigned
        uniformly at random so the initial popularity is approximately uniform
        (matching ``Q^0_j = 1/m``); otherwise everyone starts sitting out.
        """
        size = check_positive_int(size, "size")
        num_options = check_positive_int(num_options, "num_options")
        if alpha is None:
            rule: AdoptionRule = SymmetricAdoptionRule(beta)
        else:
            rule = GeneralAdoptionRule(alpha=alpha, beta=beta)
        generator = ensure_rng(rng)
        agents = []
        for agent_id in range(size):
            initial = int(generator.integers(num_options)) if seed_options else None
            agents.append(Agent(agent_id, rule, initial_option=initial))
        return cls(agents, num_options)

    @classmethod
    def heterogeneous(
        cls,
        adoption_rules: Iterable[AdoptionRule],
        num_options: int,
        *,
        seed_options: bool = True,
        rng: RngLike = None,
    ) -> "Population":
        """Build a population with one (possibly distinct) adoption rule per agent."""
        rules = list(adoption_rules)
        if not rules:
            raise ValueError("adoption_rules must be non-empty")
        num_options = check_positive_int(num_options, "num_options")
        generator = ensure_rng(rng)
        agents = []
        for agent_id, rule in enumerate(rules):
            initial = int(generator.integers(num_options)) if seed_options else None
            agents.append(Agent(agent_id, rule, initial_option=initial))
        return cls(agents, num_options)

    @classmethod
    def with_beta_distribution(
        cls,
        size: int,
        num_options: int,
        *,
        beta_low: float = 0.55,
        beta_high: float = 0.7,
        rng: RngLike = None,
    ) -> "Population":
        """Heterogeneous population with per-agent ``beta_i ~ Uniform[beta_low, beta_high]``.

        The paper's analysis assumes identical ``f_i`` "for simplicity in the
        exposition" but states the assumption is not essential; this
        constructor exists so experiments can check that claim empirically.
        """
        size = check_positive_int(size, "size")
        if not (0.0 <= beta_low <= beta_high <= 1.0):
            raise ValueError("need 0 <= beta_low <= beta_high <= 1")
        generator = ensure_rng(rng)
        betas = generator.uniform(beta_low, beta_high, size=size)
        rules = [SymmetricAdoptionRule(float(beta)) for beta in betas]
        return cls.heterogeneous(rules, num_options, rng=generator)
