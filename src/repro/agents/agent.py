"""A single memoryless individual in the social learning dynamics."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adoption import AdoptionRule
from repro.utils.validation import check_non_negative_int


class Agent:
    """One individual: an identifier, an adoption rule and a current choice.

    The agent holds no history beyond its current option — matching the
    paper's emphasis that the dynamics requires essentially no memory.  An
    agent whose latest adoption decision was negative is "sitting out"
    (``current_option is None``) for that step; it still participates in the
    next sampling stage.

    Parameters
    ----------
    agent_id:
        Non-negative integer identifier (index into the population).
    adoption_rule:
        The agent's ``f_i`` — maps the observed binary signal to an adoption
        probability.
    initial_option:
        Option adopted before the first step, or ``None`` to sit out.
    """

    __slots__ = ("agent_id", "adoption_rule", "current_option")

    def __init__(
        self,
        agent_id: int,
        adoption_rule: AdoptionRule,
        initial_option: Optional[int] = None,
    ) -> None:
        self.agent_id = check_non_negative_int(agent_id, "agent_id")
        if not isinstance(adoption_rule, AdoptionRule):
            raise TypeError("adoption_rule must be an AdoptionRule instance")
        if initial_option is not None:
            initial_option = check_non_negative_int(initial_option, "initial_option")
        self.adoption_rule = adoption_rule
        self.current_option = initial_option

    def is_committed(self) -> bool:
        """Whether the agent currently holds an option (is not sitting out)."""
        return self.current_option is not None

    def decide(
        self,
        considered_option: int,
        signal: int,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Run the adoption stage for one step.

        Parameters
        ----------
        considered_option:
            The option obtained from the sampling stage.
        signal:
            The fresh binary quality signal ``R^{t+1}_j`` of that option.
        rng:
            Generator used for the adoption coin flip.

        Returns
        -------
        Optional[int]
            The new ``current_option`` (the considered option if adopted,
            otherwise ``None`` for sitting out).
        """
        considered_option = check_non_negative_int(considered_option, "considered_option")
        if signal not in (0, 1):
            raise ValueError(f"signal must be 0 or 1, got {signal}")
        probability = self.adoption_rule.adopt_probability(signal)
        if rng.random() < probability:
            self.current_option = considered_option
        else:
            self.current_option = None
        return self.current_option

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Agent(id={self.agent_id}, option={self.current_option}, "
            f"rule={self.adoption_rule!r})"
        )
