"""Sampling rules — stage (1) of the distributed learning dynamics.

At each step, an individual obtains an option to *consider*: with probability
``mu`` it explores (picks an option uniformly at random) and with probability
``1 - mu`` it copies the choice of a uniformly random member of the group from
the previous step.  At the population level the probability that an individual
considers option ``j`` is therefore

    ``(1 - mu) * Q^t_j + mu / m``                                   (Eq. 2)

where ``Q^t`` is the popularity distribution.  :class:`MixtureSampling`
implements this rule; :class:`UniformSampling` (``mu = 1``) and
:class:`PopularityOnlySampling` (``mu = 0``) are the two ablation endpoints
discussed in Section 3.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_probability, check_probability_vector


def default_exploration_rate(adoption_rule):
    """The default ``mu`` for a given adoption rule: the theorem maximum.

    Returns ``min(1, delta^2 / 6)`` — the largest exploration rate the
    paper's theorems allow — or ``0.01`` when ``delta`` is degenerate
    (zero or infinite).  Every engine derives its default sampling rule
    from this one function so they stay exact-seed equivalent.

    For a per-row rule (:class:`~repro.core.adoption.RowwiseAdoptionRule`,
    whose ``delta`` is a shape-``(R,)`` array) the same formula is applied
    elementwise and an array of per-row rates is returned.
    """
    delta = np.asarray(adoption_rule.delta, dtype=float)
    with np.errstate(invalid="ignore"):
        rates = np.where(
            np.isfinite(delta) & (delta > 0),
            np.minimum(1.0, np.where(np.isfinite(delta), delta, 0.0) ** 2 / 6.0),
            0.01,
        )
    if rates.ndim == 0:
        return float(rates)
    return rates


def _as_popularity_matrix(popularities: np.ndarray) -> np.ndarray:
    popularities = np.asarray(popularities, dtype=float)
    if popularities.ndim != 2:
        raise ValueError(
            f"popularities must be a 2-D (R, m) matrix, got shape "
            f"{popularities.shape}"
        )
    return popularities


class SamplingRule(abc.ABC):
    """Maps the current popularity distribution to consideration probabilities."""

    @abc.abstractmethod
    def consideration_probabilities(self, popularity: np.ndarray) -> np.ndarray:
        """Per-option probability that a single individual considers each option.

        Parameters
        ----------
        popularity:
            The popularity distribution ``Q^t`` (a probability vector of
            length ``m``).

        Returns
        -------
        numpy.ndarray
            A probability vector of length ``m``.
        """

    def consideration_probabilities_batch(self, popularities: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`consideration_probabilities` over an ``(R, m)`` matrix.

        Each row of ``popularities`` is the popularity distribution of one
        independent replicate.  The default implementation applies the scalar
        rule row by row; subclasses with a closed-form rule (notably
        :class:`MixtureSampling`) override it with a single vectorised pass
        whose per-row arithmetic is bit-identical to the scalar path, which is
        what makes exact-seed equivalence between the batched and sequential
        engines possible.
        """
        popularities = _as_popularity_matrix(popularities)
        return np.stack(
            [self.consideration_probabilities(row) for row in popularities]
        )

    @property
    @abc.abstractmethod
    def exploration_rate(self) -> float:
        """The uniform-exploration weight ``mu``."""

    def minimum_consideration_probability(self, num_options: int) -> float:
        """Lower bound ``mu / m`` on any option's consideration probability."""
        return self.exploration_rate / num_options

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mu = np.asarray(self.exploration_rate)
        if mu.ndim == 0:
            return f"{type(self).__name__}(mu={float(mu):.4f})"
        return (
            f"{type(self).__name__}(R={mu.size}, "
            f"mu∈[{mu.min():.4f}, {mu.max():.4f}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SamplingRule):
            return NotImplemented
        mine = np.asarray(self.exploration_rate)
        theirs = np.asarray(other.exploration_rate)
        if mine.shape != theirs.shape:
            return False
        return bool(np.all(np.isclose(mine, theirs)))

    def __hash__(self) -> int:
        return hash(
            (
                type(self).__name__,
                np.round(np.asarray(self.exploration_rate), 12).tobytes(),
            )
        )


class MixtureSampling(SamplingRule):
    """The paper's sampling rule: uniform with weight ``mu``, popularity otherwise.

    ``mu`` may also be a shape-``(R,)`` array of per-row exploration rates for
    the batched engine's sweep-axis mode: row ``r`` of a batch then mixes with
    weight ``mu_r``.  A per-row rule only supports the batched path
    (:meth:`consideration_probabilities_batch` with exactly ``R`` rows); the
    scalar :meth:`consideration_probabilities` raises for it.
    """

    def __init__(self, mu) -> None:
        if np.ndim(mu) == 0:
            self._mu = check_probability(mu, "mu")
        else:
            mu = np.asarray(mu, dtype=float)
            if mu.ndim != 1 or mu.size == 0:
                raise ValueError("per-row mu must be a non-empty 1-D (R,) array")
            if not np.all(np.isfinite(mu)):
                raise ValueError("every per-row mu must be finite")
            if np.any(mu < 0) or np.any(mu > 1):
                raise ValueError("every per-row mu must lie in [0, 1]")
            self._mu = mu.copy()
            self._mu.setflags(write=False)

    @property
    def exploration_rate(self):
        """The uniform-exploration weight ``mu`` (float, or ``(R,)`` array per-row)."""
        return self._mu

    @property
    def is_rowwise(self) -> bool:
        """Whether this rule carries per-row exploration rates."""
        return np.ndim(self._mu) == 1

    @property
    def num_rows(self) -> int:
        """Number of parameter rows ``R`` (1 for a scalar rule)."""
        return int(np.asarray(self._mu).size) if self.is_rowwise else 1

    def consideration_probabilities(self, popularity: np.ndarray) -> np.ndarray:
        if self.is_rowwise:
            raise ValueError(
                "per-row MixtureSampling has no single-replicate rule; use "
                "consideration_probabilities_batch with an (R, m) matrix"
            )
        popularity = check_probability_vector(popularity, "popularity")
        num_options = popularity.size
        probabilities = (1.0 - self._mu) * popularity + self._mu / num_options
        # Guard against floating-point drift so downstream multinomial draws
        # always receive an exact probability vector.
        return probabilities / probabilities.sum()

    def consideration_probabilities_batch(self, popularities: np.ndarray) -> np.ndarray:
        popularities = _as_popularity_matrix(popularities)
        if np.any(popularities < 0) or not np.allclose(
            popularities.sum(axis=1), 1.0, atol=1e-8
        ):
            raise ValueError("every row of popularities must be a probability vector")
        num_options = popularities.shape[1]
        if self.is_rowwise:
            if popularities.shape[0] != self._mu.size:
                raise ValueError(
                    f"per-row mu has {self._mu.size} rows but popularities has "
                    f"{popularities.shape[0]}"
                )
            mu = self._mu[:, None]
        else:
            mu = self._mu
        probabilities = (1.0 - mu) * popularities + mu / num_options
        return probabilities / probabilities.sum(axis=1, keepdims=True)


class UniformSampling(MixtureSampling):
    """Pure independent exploration (``mu = 1``): the adoption-only ablation."""

    def __init__(self) -> None:
        super().__init__(mu=1.0)


class PopularityOnlySampling(MixtureSampling):
    """Pure imitation (``mu = 0``).

    Without the exploration floor the popularity of an option can hit zero and
    never recover; the paper's analysis crucially relies on ``mu > 0`` and the
    ablation benchmarks use this class to demonstrate why.
    """

    def __init__(self) -> None:
        super().__init__(mu=0.0)
