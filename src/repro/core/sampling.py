"""Sampling rules — stage (1) of the distributed learning dynamics.

At each step, an individual obtains an option to *consider*: with probability
``mu`` it explores (picks an option uniformly at random) and with probability
``1 - mu`` it copies the choice of a uniformly random member of the group from
the previous step.  At the population level the probability that an individual
considers option ``j`` is therefore

    ``(1 - mu) * Q^t_j + mu / m``                                   (Eq. 2)

where ``Q^t`` is the popularity distribution.  :class:`MixtureSampling`
implements this rule; :class:`UniformSampling` (``mu = 1``) and
:class:`PopularityOnlySampling` (``mu = 0``) are the two ablation endpoints
discussed in Section 3.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_probability, check_probability_vector


def default_exploration_rate(adoption_rule) -> float:
    """The default ``mu`` for a given adoption rule: the theorem maximum.

    Returns ``min(1, delta^2 / 6)`` — the largest exploration rate the
    paper's theorems allow — or ``0.01`` when ``delta`` is degenerate
    (zero or infinite).  Every engine derives its default sampling rule
    from this one function so they stay exact-seed equivalent.
    """
    delta = adoption_rule.delta
    if np.isfinite(delta) and delta > 0:
        return min(1.0, delta**2 / 6.0)
    return 0.01


def _as_popularity_matrix(popularities: np.ndarray) -> np.ndarray:
    popularities = np.asarray(popularities, dtype=float)
    if popularities.ndim != 2:
        raise ValueError(
            f"popularities must be a 2-D (R, m) matrix, got shape "
            f"{popularities.shape}"
        )
    return popularities


class SamplingRule(abc.ABC):
    """Maps the current popularity distribution to consideration probabilities."""

    @abc.abstractmethod
    def consideration_probabilities(self, popularity: np.ndarray) -> np.ndarray:
        """Per-option probability that a single individual considers each option.

        Parameters
        ----------
        popularity:
            The popularity distribution ``Q^t`` (a probability vector of
            length ``m``).

        Returns
        -------
        numpy.ndarray
            A probability vector of length ``m``.
        """

    def consideration_probabilities_batch(self, popularities: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`consideration_probabilities` over an ``(R, m)`` matrix.

        Each row of ``popularities`` is the popularity distribution of one
        independent replicate.  The default implementation applies the scalar
        rule row by row; subclasses with a closed-form rule (notably
        :class:`MixtureSampling`) override it with a single vectorised pass
        whose per-row arithmetic is bit-identical to the scalar path, which is
        what makes exact-seed equivalence between the batched and sequential
        engines possible.
        """
        popularities = _as_popularity_matrix(popularities)
        return np.stack(
            [self.consideration_probabilities(row) for row in popularities]
        )

    @property
    @abc.abstractmethod
    def exploration_rate(self) -> float:
        """The uniform-exploration weight ``mu``."""

    def minimum_consideration_probability(self, num_options: int) -> float:
        """Lower bound ``mu / m`` on any option's consideration probability."""
        return self.exploration_rate / num_options

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mu={self.exploration_rate:.4f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SamplingRule):
            return NotImplemented
        return np.isclose(self.exploration_rate, other.exploration_rate)

    def __hash__(self) -> int:
        return hash((type(self).__name__, round(self.exploration_rate, 12)))


class MixtureSampling(SamplingRule):
    """The paper's sampling rule: uniform with weight ``mu``, popularity otherwise."""

    def __init__(self, mu: float) -> None:
        self._mu = check_probability(mu, "mu")

    @property
    def exploration_rate(self) -> float:
        return self._mu

    def consideration_probabilities(self, popularity: np.ndarray) -> np.ndarray:
        popularity = check_probability_vector(popularity, "popularity")
        num_options = popularity.size
        probabilities = (1.0 - self._mu) * popularity + self._mu / num_options
        # Guard against floating-point drift so downstream multinomial draws
        # always receive an exact probability vector.
        return probabilities / probabilities.sum()

    def consideration_probabilities_batch(self, popularities: np.ndarray) -> np.ndarray:
        popularities = _as_popularity_matrix(popularities)
        if np.any(popularities < 0) or not np.allclose(
            popularities.sum(axis=1), 1.0, atol=1e-8
        ):
            raise ValueError("every row of popularities must be a probability vector")
        num_options = popularities.shape[1]
        probabilities = (1.0 - self._mu) * popularities + self._mu / num_options
        return probabilities / probabilities.sum(axis=1, keepdims=True)


class UniformSampling(MixtureSampling):
    """Pure independent exploration (``mu = 1``): the adoption-only ablation."""

    def __init__(self) -> None:
        super().__init__(mu=1.0)


class PopularityOnlySampling(MixtureSampling):
    """Pure imitation (``mu = 0``).

    Without the exploration floor the popularity of an option can hit zero and
    never recover; the paper's analysis crucially relies on ``mu > 0`` and the
    ablation benchmarks use this class to demonstrate why.
    """

    def __init__(self) -> None:
        super().__init__(mu=0.0)
