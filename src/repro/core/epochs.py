"""Epoch decomposition used in the large-``T`` part of Theorem 4.4.

For horizons longer than the coupling can cover, the proof splits time into
epochs of length ``ln(4m / (mu (1 - beta))) / delta^2``.  At the start of each
epoch every option has popularity at least ``zeta = mu (1 - beta) / (4m)``
(Proposition 4.3), so the non-uniform-start regret bound (Theorem 4.6) applies
within each epoch and the per-epoch regrets average to the final ``6*delta``.

:class:`EpochSchedule` computes that segmentation and provides per-epoch views
of a trajectory, which experiment E3 uses to show the regret is controlled in
every epoch, not merely on average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.theory import TheoryBounds
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class EpochSchedule:
    """Segmentation of ``1..horizon`` into epochs of (at most) ``epoch_length`` steps.

    Parameters
    ----------
    horizon:
        Total number of steps ``T``.
    epoch_length:
        Steps per epoch; the final epoch may be shorter.
    """

    horizon: int
    epoch_length: int

    def __post_init__(self) -> None:
        check_positive_int(self.horizon, "horizon")
        check_positive_int(self.epoch_length, "epoch_length")

    @classmethod
    def from_bounds(cls, bounds: TheoryBounds, horizon: int) -> "EpochSchedule":
        """Build the schedule with the paper's epoch length for the given parameters."""
        length = max(1, int(math.ceil(bounds.epoch_length())))
        return cls(horizon=horizon, epoch_length=length)

    @property
    def num_epochs(self) -> int:
        """Number of epochs covering the horizon."""
        return int(math.ceil(self.horizon / self.epoch_length))

    def boundaries(self) -> List[Tuple[int, int]]:
        """Half-open step ranges ``[(start, end), ...]`` covering ``0..horizon``."""
        ranges = []
        start = 0
        while start < self.horizon:
            end = min(start + self.epoch_length, self.horizon)
            ranges.append((start, end))
            start = end
        return ranges

    def epoch_of(self, step: int) -> int:
        """Epoch index containing step ``step`` (0-based step indexing)."""
        if step < 0 or step >= self.horizon:
            raise ValueError(f"step {step} outside horizon {self.horizon}")
        return step // self.epoch_length

    def split_series(self, series: Sequence[float]) -> List[np.ndarray]:
        """Split a length-``horizon`` series into per-epoch arrays."""
        series = np.asarray(series)
        if series.shape[0] != self.horizon:
            raise ValueError(
                f"series has length {series.shape[0]}, expected {self.horizon}"
            )
        return [series[start:end] for start, end in self.boundaries()]

    def per_epoch_regret(
        self,
        popularities: np.ndarray,
        rewards: np.ndarray,
        best_quality: float,
    ) -> np.ndarray:
        """Average regret within each epoch (length ``num_epochs`` vector)."""
        popularities = np.asarray(popularities, dtype=float)
        rewards = np.asarray(rewards, dtype=float)
        if popularities.shape != rewards.shape or popularities.shape[0] != self.horizon:
            raise ValueError("popularities/rewards must be (horizon, m) matrices")
        per_step = np.einsum("tj,tj->t", popularities, rewards)
        return np.array(
            [best_quality - chunk.mean() for chunk in self.split_series(per_step)]
        )
