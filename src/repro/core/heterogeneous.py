"""Vectorised dynamics for heterogeneous populations.

The paper assumes identical adoption functions ``f_i`` "for simplicity in the
exposition" and notes the assumption is not essential.  The agent-based
simulator (:class:`repro.core.dynamics.AgentBasedDynamics`) already supports
arbitrary per-agent rules but costs ``O(N)`` Python work per step.  This
module provides a vectorised middle ground: the population is partitioned into
a small number of *types*, each type sharing an adoption rule
``(alpha_k, beta_k)`` and optionally its own exploration rate ``mu_k``, and
the per-step update is carried out with one multinomial + binomial draw per
type.  This keeps heterogeneity experiments (benchmark E14) fast at
``N = 10^4`` and beyond.

Sampling remains global: every individual, of every type, observes the
popularity of the *whole* committed population, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.state import PopulationState, Trajectory
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class AgentType:
    """A sub-population sharing one adoption rule and exploration rate.

    Attributes
    ----------
    count:
        Number of individuals of this type.
    adoption_rule:
        The type's ``f`` (``alpha``/``beta``).
    exploration_rate:
        The type's ``mu``; individuals of this type explore uniformly with
        this probability in the sampling stage.
    """

    count: int
    adoption_rule: AdoptionRule
    exploration_rate: float = 0.02

    def __post_init__(self) -> None:
        check_positive_int(self.count, "count")
        if not isinstance(self.adoption_rule, AdoptionRule):
            raise TypeError("adoption_rule must be an AdoptionRule")
        check_probability(self.exploration_rate, "exploration_rate")


class HeterogeneousPopulationDynamics:
    """The two-stage dynamics over a typed (heterogeneous) population.

    Parameters
    ----------
    agent_types:
        The sub-populations; the total population size is the sum of their
        counts.
    num_options:
        Number of options ``m``.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        agent_types: Sequence[AgentType],
        num_options: int,
        rng: RngLike = None,
    ) -> None:
        if not agent_types:
            raise ValueError("agent_types must be non-empty")
        self._types = list(agent_types)
        self._num_options = check_positive_int(num_options, "num_options")
        self._rng = ensure_rng(rng)
        self._population_size = sum(agent_type.count for agent_type in self._types)
        # counts[k, j]: individuals of type k currently committed to option j.
        self._counts = np.zeros((len(self._types), num_options), dtype=np.int64)
        for index, agent_type in enumerate(self._types):
            base, remainder = divmod(agent_type.count, num_options)
            row = np.full(num_options, base, dtype=np.int64)
            row[:remainder] += 1
            self._counts[index] = row
        self._time = 0

    # ------------------------------------------------------------ properties
    @property
    def agent_types(self) -> List[AgentType]:
        """The type definitions."""
        return list(self._types)

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def population_size(self) -> int:
        """Total number of individuals across all types."""
        return self._population_size

    @property
    def time(self) -> int:
        """Number of steps simulated so far."""
        return self._time

    def counts_by_type(self) -> np.ndarray:
        """Per-type, per-option committed counts; shape ``(num_types, m)`` (copy)."""
        return self._counts.copy()

    def state(self) -> PopulationState:
        """Aggregate state over the whole population."""
        return PopulationState(
            counts=self._counts.sum(axis=0),
            population_size=self._population_size,
            time=self._time,
        )

    def popularity(self) -> np.ndarray:
        """Global popularity among committed individuals (uniform if none)."""
        return self.state().popularity()

    def popularity_by_type(self) -> np.ndarray:
        """Per-type popularity distributions; rows with no committed members are uniform."""
        totals = self._counts.sum(axis=1, keepdims=True)
        uniform = np.full(self._num_options, 1.0 / self._num_options)
        with np.errstate(invalid="ignore", divide="ignore"):
            popularity = np.where(
                totals > 0, self._counts / np.maximum(totals, 1), uniform
            )
        return popularity

    # ------------------------------------------------------------------ step
    def step(self, rewards: Sequence[int]) -> PopulationState:
        """Advance every sub-population one step given the reward vector ``R^{t+1}``."""
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        global_popularity = self.popularity()
        new_counts = np.zeros_like(self._counts)
        for index, agent_type in enumerate(self._types):
            mu = agent_type.exploration_rate
            consideration = (1.0 - mu) * global_popularity + mu / self._num_options
            consideration = consideration / consideration.sum()
            selected = self._rng.multinomial(agent_type.count, consideration)
            adopt_probabilities = agent_type.adoption_rule.adopt_probabilities(rewards)
            new_counts[index] = self._rng.binomial(selected, adopt_probabilities)
        self._counts = new_counts
        self._time += 1
        return self.state()

    def run(self, environment: RewardEnvironment, horizon: int) -> Trajectory:
        """Simulate ``horizon`` steps against ``environment``; record the aggregate trajectory."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        trajectory = Trajectory(initial_state=self.state())
        for _ in range(horizon):
            pre_step_popularity = self.popularity()
            rewards = environment.sample()
            new_state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, new_state)
        return trajectory

    # -------------------------------------------------------- constructors
    @classmethod
    def two_group(
        cls,
        population_size: int,
        num_options: int,
        *,
        responsive_fraction: float = 0.5,
        responsive_beta: float = 0.7,
        unresponsive_beta: float = 0.55,
        exploration_rate: float = 0.02,
        rng: RngLike = None,
    ) -> "HeterogeneousPopulationDynamics":
        """A convenient two-type population: responsive vs. weakly-responsive individuals."""
        population_size = check_positive_int(population_size, "population_size")
        responsive_fraction = check_probability(
            responsive_fraction, "responsive_fraction"
        )
        responsive = max(1, int(round(responsive_fraction * population_size)))
        responsive = min(responsive, population_size - 1) if population_size > 1 else 1
        unresponsive = population_size - responsive
        types = [
            AgentType(
                responsive, SymmetricAdoptionRule(responsive_beta), exploration_rate
            )
        ]
        if unresponsive > 0:
            types.append(
                AgentType(
                    unresponsive,
                    SymmetricAdoptionRule(unresponsive_beta),
                    exploration_rate,
                )
            )
        return cls(types, num_options, rng=rng)

    @classmethod
    def from_beta_values(
        cls,
        betas: Sequence[float],
        counts: Sequence[int],
        num_options: int,
        *,
        exploration_rate: float = 0.02,
        rng: RngLike = None,
    ) -> "HeterogeneousPopulationDynamics":
        """Build one type per ``(beta, count)`` pair."""
        if len(betas) != len(counts) or not betas:
            raise ValueError("betas and counts must be non-empty and the same length")
        types = [
            AgentType(count, SymmetricAdoptionRule(beta), exploration_rate)
            for beta, count in zip(betas, counts)
        ]
        return cls(types, num_options, rng=rng)
