"""Executable versions of every constant and bound in the paper's theorems.

Keeping all of the paper's expressions in one module means tests and
benchmarks compare simulation output against *exactly* the quantities stated
in the paper rather than re-derived (and possibly mistyped) copies.

Covered statements
------------------
* ``delta = ln(beta / (1 - beta))`` and the admissible range
  ``1/2 < beta <= e/(e+1)`` (so ``0 < delta <= 1``);
* the exploration constraint ``6 * mu <= delta^2`` (Theorems 4.3/4.4);
* Theorem 4.3 — ``Regret_inf(T) <= ln(m)/(delta*T) + 2*delta`` for any ``T``
  and hence ``<= 3*delta`` for ``T >= ln(m)/delta^2``; best-option share
  ``>= 1 - 3*delta/(eta_1 - eta_2)``;
* Theorem 4.6 — the non-uniform-start variant with ``ln(1/zeta)`` in place of
  ``ln m``;
* Proposition 4.1 — ``delta' = sqrt(30 m ln N / (mu N))`` concentration of the
  sampling stage;
* Propositions 4.2/4.3 — ``delta'' = sqrt(60 m ln N / ((1-beta) mu N))``
  concentration of the adoption stage and the combined ``1 + 6 delta''``
  closeness, plus the occupancy floor ``Q^t_j >= mu (1-beta) / (4m)``;
* Lemma 4.5 — the coupling factor ``1 + delta_t`` with ``delta_t = 5^t delta''``
  and failure probability ``6 t m / N^10``;
* Theorem 4.4 — the finite-population regret bound ``6*delta``, the epoch
  length ``ln(4m/(mu(1-beta)))/delta^2`` and the two N-threshold conditions;
* the conclusion's remark that tuning ``beta`` recovers the classic
  ``O(sqrt(ln m / T))`` MWU regret (:func:`optimal_beta`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive_int, check_probability

#: Upper end of the admissible beta range, e / (e + 1) ≈ 0.7311.
BETA_UPPER_LIMIT = math.e / (math.e + 1.0)


def delta_from_beta(beta: float) -> float:
    """The paper's rate parameter ``delta = ln(beta / (1 - beta))``."""
    beta = check_probability(beta, "beta")
    if beta <= 0.5:
        raise ValueError(f"delta is only positive for beta > 1/2, got beta={beta}")
    if beta >= 1.0:
        raise ValueError("beta must be strictly less than 1 for delta to be finite")
    return math.log(beta / (1.0 - beta))


def beta_from_delta(delta: float) -> float:
    """Inverse of :func:`delta_from_beta`: ``beta = e^delta / (1 + e^delta)``."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return math.exp(delta) / (1.0 + math.exp(delta))


def max_exploration_rate(beta: float) -> float:
    """Largest ``mu`` satisfying the theorem constraint ``6*mu <= delta^2``."""
    return delta_from_beta(beta) ** 2 / 6.0


def optimal_beta(horizon: int, num_options: int) -> float:
    """The ``beta`` minimising the Theorem 4.3 bound ``ln(m)/(delta T) + 2 delta``.

    Minimising over ``delta`` gives ``delta* = sqrt(ln(m) / (2T))`` and hence a
    regret bound of ``2*sqrt(2 ln(m)/T) ~ O(sqrt(ln m / T))`` — the classic MWU
    rate the conclusion says an algorithm designer could target by optimising
    ``beta``.  The returned ``beta`` is clipped into the admissible range
    ``(1/2, e/(e+1)]``.
    """
    horizon = check_positive_int(horizon, "horizon")
    num_options = check_positive_int(num_options, "num_options")
    if num_options == 1:
        return 0.5 + 1e-6
    delta_star = math.sqrt(math.log(num_options) / (2.0 * horizon))
    delta_star = min(max(delta_star, 1e-6), 1.0)
    beta = beta_from_delta(delta_star)
    return min(beta, BETA_UPPER_LIMIT)


@dataclass(frozen=True)
class TheoryBounds:
    """All paper bounds for a given parameterisation of the dynamics.

    Parameters
    ----------
    num_options:
        Number of options ``m``.
    beta:
        Adoption probability on a good signal, with ``alpha = 1 - beta``.
    mu:
        Exploration rate of the sampling stage.
    population_size:
        Group size ``N`` (optional; only needed for the finite-population
        quantities).
    strict:
        If true (default), reject parameters outside the theorem ranges
        (``1/2 < beta <= e/(e+1)``, ``6 mu <= delta^2``).  Set to false to
        compute the formulas for out-of-range parameters in ablation studies.
    """

    num_options: int
    beta: float
    mu: float
    population_size: int | None = None
    strict: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.num_options, "num_options")
        check_probability(self.beta, "beta")
        check_probability(self.mu, "mu")
        if self.population_size is not None:
            check_positive_int(self.population_size, "population_size")
        if self.strict:
            check_in_range(
                self.beta,
                "beta",
                0.5,
                BETA_UPPER_LIMIT,
                inclusive_low=False,
                inclusive_high=True,
            )
            if 6.0 * self.mu > self.delta**2 + 1e-12:
                raise ValueError(
                    f"theorem range requires 6*mu <= delta^2; got mu={self.mu}, "
                    f"delta^2={self.delta ** 2:.6f}"
                )

    # ------------------------------------------------------------ parameters
    @property
    def delta(self) -> float:
        """``delta = ln(beta / (1 - beta))``."""
        return delta_from_beta(self.beta)

    @property
    def alpha(self) -> float:
        """``alpha = 1 - beta`` under the exposition convention."""
        return 1.0 - self.beta

    # --------------------------------------------------- Theorem 4.3 and 4.6
    def minimum_horizon(self) -> float:
        """``T >= ln(m) / delta^2`` required by Theorem 4.3."""
        return math.log(self.num_options) / self.delta**2

    def infinite_regret_bound(self, horizon: int | None = None) -> float:
        """Theorem 4.3 regret bound for the infinite-population dynamics.

        With an explicit ``horizon`` the sharper intermediate form
        ``ln(m)/(delta*T) + 2*delta`` is returned; without it the headline
        ``3*delta`` (valid for ``T >= ln(m)/delta^2``) is returned.
        """
        if horizon is None:
            return 3.0 * self.delta
        horizon = check_positive_int(horizon, "horizon")
        return math.log(self.num_options) / (self.delta * horizon) + 2.0 * self.delta

    def best_option_share_bound(self, quality_gap: float) -> float:
        """Theorem 4.3 part 2: lower bound on the best option's average share.

        ``avg_t E[P^{t-1}_1] >= 1 - 3*delta / (eta_1 - eta_2)``; clipped at 0
        because the bound is vacuous when the gap is small.
        """
        if quality_gap <= 0:
            return 0.0
        return max(0.0, 1.0 - 3.0 * self.delta / quality_gap)

    def nonuniform_minimum_horizon(self, zeta: float) -> float:
        """Theorem 4.6: horizon ``ln(1/zeta)/delta^2`` for a start with ``P^0_j >= zeta``."""
        zeta = check_in_range(zeta, "zeta", 0.0, 1.0, inclusive_low=False)
        return math.log(1.0 / zeta) / self.delta**2

    # -------------------------------------------------- Propositions 4.1-4.3
    def sampling_concentration(self) -> float:
        """Proposition 4.1's ``delta' = sqrt(30 m ln N / (mu N))``."""
        self._require_population()
        n = self.population_size
        return math.sqrt(30.0 * self.num_options * math.log(n) / (self.mu * n))

    def adoption_concentration(self) -> float:
        """Propositions 4.2/4.3's ``delta'' = sqrt(60 m ln N / ((1-beta) mu N))``."""
        self._require_population()
        n = self.population_size
        return math.sqrt(
            60.0
            * self.num_options
            * math.log(n)
            / ((1.0 - self.beta) * self.mu * n)
        )

    def single_step_closeness(self) -> float:
        """Proposition 4.3's combined one-step closeness factor ``1 + 6*delta''``."""
        return 1.0 + 6.0 * self.adoption_concentration()

    def occupancy_floor(self) -> float:
        """The popularity floor ``zeta = mu (1 - beta) / (4 m)`` used for epochs."""
        return self.mu * (1.0 - self.beta) / (4.0 * self.num_options)

    def per_step_failure_probability(self) -> float:
        """Proposition 4.3's failure probability ``6 m / N^10``."""
        self._require_population()
        return min(1.0, 6.0 * self.num_options / float(self.population_size) ** 10)

    # ------------------------------------------------------------- Lemma 4.5
    def coupling_factor(self, time: int) -> float:
        """Lemma 4.5's multiplicative closeness ``1 + 5^t * delta''`` at time ``t``."""
        time = check_positive_int(time, "time") if time != 0 else 0
        return 1.0 + 5.0**time * self.adoption_concentration()

    def coupling_failure_probability(self, time: int) -> float:
        """Lemma 4.5's failure probability ``6 t m / N^10`` at time ``t``."""
        self._require_population()
        return min(
            1.0, 6.0 * time * self.num_options / float(self.population_size) ** 10
        )

    def coupling_valid_horizon(self) -> int:
        """Largest ``t`` for which the Lemma 4.5 factor ``5^t delta''`` stays below 1.

        Beyond this horizon the lemma's multiplicative guarantee is vacuous;
        the paper notes the closeness "becomes uninteresting after about
        ``log N`` time steps".
        """
        dpp = self.adoption_concentration()
        if dpp >= 1.0:
            return 0
        return int(math.floor(math.log(1.0 / dpp) / math.log(5.0)))

    # ----------------------------------------------------------- Theorem 4.4
    def finite_regret_bound(self) -> float:
        """Theorem 4.4's headline bound ``6*delta`` on the finite-population regret."""
        return 6.0 * self.delta

    def epoch_length(self) -> float:
        """Length ``ln(4m / (mu (1-beta))) / delta^2`` of the epochs in the large-T proof."""
        return math.log(1.0 / self.occupancy_floor()) / self.delta**2

    def maximum_horizon(self) -> float:
        """Theorem 4.4's upper limit ``N^10 / (m * delta)`` on the horizon."""
        self._require_population()
        return float(self.population_size) ** 10 / (self.num_options * self.delta)

    def population_size_condition(self) -> dict:
        """Evaluate Theorem 4.4's two conditions on ``N`` for the current parameters.

        Returns a dict with the left/right sides of each condition and whether
        it holds.  The conditions are extremely conservative (they come from a
        union bound over ``N^10`` events); simulations typically exhibit the
        regret bound for far smaller ``N``, which experiment E3 demonstrates.
        """
        self._require_population()
        n = float(self.population_size)
        c = 240.0 * self.num_options / ((1.0 - self.beta) * self.mu)
        dpp = self.adoption_concentration()
        base = c * 4.0 * self.num_options / (self.mu * (1.0 - self.beta))
        exponent = 2.0 * math.log(5.0) / self.delta**2
        condition1_rhs = base**exponent * dpp**2
        condition1_lhs = n / math.log(n)
        condition2_lhs = n**10
        condition2_rhs = (
            24.0
            * self.num_options
            * math.log(self.num_options)
            / (self.mu * (1.0 - self.beta) * self.delta**3)
        )
        return {
            "condition1_lhs": condition1_lhs,
            "condition1_rhs": condition1_rhs,
            "condition1_holds": condition1_lhs >= condition1_rhs,
            "condition2_lhs": condition2_lhs,
            "condition2_rhs": condition2_rhs,
            "condition2_holds": condition2_lhs >= condition2_rhs,
        }

    # -------------------------------------------------------------- plumbing
    def _require_population(self) -> None:
        if self.population_size is None:
            raise ValueError(
                "this quantity needs population_size; construct TheoryBounds with "
                "population_size=N"
            )

    def summary(self) -> dict:
        """All scalar bounds as a plain dict (used by benchmarks for reporting)."""
        summary = {
            "m": self.num_options,
            "beta": self.beta,
            "mu": self.mu,
            "delta": self.delta,
            "min_horizon": self.minimum_horizon(),
            "infinite_regret_bound": self.infinite_regret_bound(),
            "finite_regret_bound": self.finite_regret_bound(),
            "occupancy_floor": self.occupancy_floor(),
            "epoch_length": self.epoch_length(),
        }
        if self.population_size is not None:
            summary.update(
                {
                    "N": self.population_size,
                    "delta_prime": self.sampling_concentration(),
                    "delta_double_prime": self.adoption_concentration(),
                    "single_step_closeness": self.single_step_closeness(),
                    "coupling_valid_horizon": self.coupling_valid_horizon(),
                    "max_horizon": self.maximum_horizon(),
                }
            )
        return summary
