"""Replicate-axis batched simulation of the finite-population dynamics.

The CelisKV17 dynamics are exchangeable: the whole population evolves as one
multinomial draw (stage 1, Eq. 2) followed by per-option binomial thinning
(stage 2, Eq. 3).  Independent replicates of the same experiment are therefore
just one more array axis — :class:`BatchedDynamics` advances an ``(R, m)``
count matrix for ``R`` replicates in a single NumPy pass per step instead of
looping a :class:`~repro.core.dynamics.FinitePopulationDynamics` instance per
seed.  At ``N = 10^5`` and ``R = 100`` this is more than an order of magnitude
faster than the sequential loop (see ``benchmarks/test_bench_batched.py``).

Equivalence guarantees (enforced by the test suite):

* **exact-seed**: with ``R = 1`` and the same seed, :class:`BatchedDynamics`
  consumes the random stream identically to
  :class:`~repro.core.dynamics.FinitePopulationDynamics`, producing
  bit-identical trajectories;
* **statistical**: for any ``R`` the per-replicate marginals match the
  sequential engine's distribution (KS / chi-squared cross-validation in
  ``tests/integration/test_cross_validation.py``).

:class:`BatchedTrajectory` records the whole batch and exposes per-replicate
:class:`~repro.core.state.Trajectory` views, so downstream consumers (regret
accounting, convergence analysis, plotting) work unchanged on any single
replicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.backends import BackendLike, PrecisionLike, get_namespace, resolve_precision
from repro.core.adoption import (
    AdoptionRule,
    GeneralAdoptionRule,
    RowwiseAdoptionRule,
    SymmetricAdoptionRule,
)
from repro.core.sampling import MixtureSampling, SamplingRule, default_exploration_rate
from repro.core.state import PopulationState, Trajectory
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int, check_quality_vector


@dataclass(frozen=True)
class BatchedPopulationState:
    """Snapshot of ``R`` independent replicate populations at one time step.

    Attributes
    ----------
    counts:
        Per-replicate, per-option adoption counts, shape ``(R, m)``.
    population_size:
        Number of individuals ``N`` — a single int shared by every replicate,
        or a shape-``(R,)`` array of per-replicate sizes (the sweep-axis mode,
        where rows belong to different grid points).
    time:
        The time step index this snapshot corresponds to.
    """

    counts: np.ndarray
    population_size: Union[int, np.ndarray]
    time: int = 0

    def __post_init__(self) -> None:
        # Integer dtypes are preserved (the Precision discipline stores int32
        # counts); anything else is normalised to the historical int64.
        counts = np.asarray(self.counts)
        if not np.issubdtype(counts.dtype, np.integer):
            counts = counts.astype(np.int64)
        if counts.ndim != 2 or counts.shape[0] == 0 or counts.shape[1] == 0:
            raise ValueError("counts must be a non-empty 2-D (R, m) array")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        object.__setattr__(self, "counts", counts)
        if np.ndim(self.population_size) == 0:
            check_positive_int(
                self.population_size, "population_size"
            )
            object.__setattr__(self, "population_size", int(self.population_size))
        else:
            sizes = np.asarray(self.population_size, dtype=np.int64)
            if sizes.ndim != 1 or sizes.shape[0] != counts.shape[0]:
                raise ValueError(
                    f"per-replicate population_size must have shape "
                    f"({counts.shape[0]},), got {sizes.shape}"
                )
            if np.any(sizes <= 0):
                raise ValueError("every population size must be positive")
            sizes = sizes.copy()
            sizes.setflags(write=False)
            object.__setattr__(self, "population_size", sizes)
        row_totals = counts.sum(axis=1)
        if np.any(row_totals > self.population_size):
            worst = int((row_totals - self.population_sizes).argmax())
            raise ValueError(
                f"replicate {worst} has committed count {int(row_totals[worst])} "
                f"exceeding population size {int(self.population_sizes[worst])}"
            )

    @property
    def population_sizes(self) -> np.ndarray:
        """Per-replicate population sizes, shape ``(R,)`` (scalar broadcast)."""
        if np.ndim(self.population_size) == 0:
            return np.full(self.num_replicates, self.population_size, dtype=np.int64)
        return self.population_size

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R``."""
        return int(self.counts.shape[0])

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return int(self.counts.shape[1])

    @property
    def committed(self) -> np.ndarray:
        """Per-replicate number of committed individuals, shape ``(R,)``."""
        return self.counts.sum(axis=1)

    def popularity(self, dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Per-replicate popularity ``Q^t``, shape ``(R, m)``; uniform rows where nobody is committed.

        The division always runs in float64 (so the sampling stage consumes
        identical values at every precision); ``dtype`` only down-casts the
        *returned* matrix, which is how the float32 precision stores its
        trajectory without perturbing the dynamics.
        """
        totals = self.counts.sum(axis=1, keepdims=True)
        uniform = 1.0 / self.num_options
        with np.errstate(divide="ignore", invalid="ignore"):
            popularity = self.counts / totals
        popularity = np.where(totals == 0, uniform, popularity)
        if dtype is not None:
            popularity = popularity.astype(dtype, copy=False)
        return popularity

    def min_popularity(self) -> np.ndarray:
        """Per-replicate occupancy floor ``min_j Q^t_j``, shape ``(R,)``."""
        return self.popularity().min(axis=1)

    def entropy(self) -> np.ndarray:
        """Per-replicate Shannon entropy (nats) of the popularity, shape ``(R,)``."""
        popularity = self.popularity()
        contributions = np.where(
            popularity > 0,
            popularity * np.log(np.where(popularity > 0, popularity, 1.0)),
            0.0,
        )
        return -contributions.sum(axis=1)

    def leader(self) -> np.ndarray:
        """Per-replicate most popular option (ties toward lower index), shape ``(R,)``."""
        return self.counts.argmax(axis=1)

    def replicate(self, index: int) -> PopulationState:
        """The single-replicate :class:`PopulationState` view of row ``index``."""
        if not 0 <= index < self.num_replicates:
            raise IndexError(
                f"replicate index {index} out of range for R={self.num_replicates}"
            )
        return PopulationState(
            counts=self.counts[index].copy(),
            population_size=int(self.population_sizes[index]),
            time=self.time,
        )

    @classmethod
    def uniform(
        cls,
        num_replicates: int,
        population_size: int,
        num_options: int,
        time: int = 0,
    ) -> "BatchedPopulationState":
        """Every replicate starts from the near-uniform split of :meth:`PopulationState.uniform`."""
        num_replicates = check_positive_int(num_replicates, "num_replicates")
        template = PopulationState.uniform(population_size, num_options, time=time)
        return cls.from_state(template, num_replicates)

    @classmethod
    def from_state(
        cls, state: PopulationState, num_replicates: int
    ) -> "BatchedPopulationState":
        """Tile one :class:`PopulationState` across ``num_replicates`` replicates."""
        num_replicates = check_positive_int(num_replicates, "num_replicates")
        return cls(
            counts=np.tile(state.counts, (num_replicates, 1)),
            population_size=state.population_size,
            time=state.time,
        )

    @classmethod
    def stack(cls, states: Sequence[PopulationState]) -> "BatchedPopulationState":
        """Stack heterogeneous single-replicate states into one batch.

        All states must share the number of options and the time index; the
        population sizes may differ per row (they collapse to a single int
        when they all agree, preserving the homogeneous fast path).
        """
        if len(states) == 0:
            raise ValueError("need at least one state to stack")
        options = {state.num_options for state in states}
        if len(options) != 1:
            raise ValueError("all stacked states must share the number of options")
        times = {state.time for state in states}
        if len(times) != 1:
            raise ValueError("all stacked states must share the time index")
        sizes = np.array([state.population_size for state in states], dtype=np.int64)
        population_size: Union[int, np.ndarray]
        if np.all(sizes == sizes[0]):
            population_size = int(sizes[0])
        else:
            population_size = sizes
        return cls(
            counts=np.stack([state.counts for state in states]),
            population_size=population_size,
            time=states[0].time,
        )


@dataclass
class BatchedTrajectory:
    """Time series of batched states, rewards and pre-step popularities.

    The layout mirrors :class:`~repro.core.state.Trajectory` with one extra
    leading replicate axis on every recorded array: for each step ``t``,
    ``pre_step_popularities[t]`` and ``rewards[t]`` have shape ``(R, m)``.
    :meth:`replicate` slices out one replicate as a plain
    :class:`~repro.core.state.Trajectory`, so existing consumers (regret,
    convergence detection, plotting) need no changes.
    """

    initial_state: BatchedPopulationState
    states: List[BatchedPopulationState] = field(default_factory=list)
    rewards: List[np.ndarray] = field(default_factory=list)
    pre_step_popularities: List[np.ndarray] = field(default_factory=list)

    def record(
        self,
        pre_step_popularity: np.ndarray,
        rewards: np.ndarray,
        new_state: BatchedPopulationState,
    ) -> None:
        """Append one batched step's observations to the trajectory.

        Floating popularity matrices keep their dtype (float32 under the
        reduced precision); anything else is normalised to float64.
        """
        popularity = np.asarray(pre_step_popularity)
        if not np.issubdtype(popularity.dtype, np.floating):
            popularity = popularity.astype(float)
        self.pre_step_popularities.append(popularity)
        self.rewards.append(np.asarray(rewards, dtype=np.int8))
        self.states.append(new_state)

    @property
    def horizon(self) -> int:
        """Number of recorded steps ``T``."""
        return len(self.states)

    @property
    def num_replicates(self) -> int:
        """Number of replicates ``R``."""
        return self.initial_state.num_replicates

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self.initial_state.num_options

    def popularity_tensor(self) -> np.ndarray:
        """Pre-step popularities ``Q^{t-1}``, shape ``(T, R, m)``."""
        if not self.pre_step_popularities:
            return np.zeros((0, self.num_replicates, self.num_options))
        return np.stack(self.pre_step_popularities)

    def reward_tensor(self) -> np.ndarray:
        """Observed rewards ``R^t``, shape ``(T, R, m)``."""
        if not self.rewards:
            return np.zeros((0, self.num_replicates, self.num_options), dtype=np.int8)
        return np.stack(self.rewards)

    def final_state(self) -> BatchedPopulationState:
        """The last recorded batched state (the initial state if no steps recorded)."""
        return self.states[-1] if self.states else self.initial_state

    def replicate(self, index: int) -> Trajectory:
        """Per-replicate :class:`Trajectory` view of replicate ``index``."""
        trajectory = Trajectory(initial_state=self.initial_state.replicate(index))
        for popularity, rewards, state in zip(
            self.pre_step_popularities, self.rewards, self.states
        ):
            trajectory.record(popularity[index], rewards[index], state.replicate(index))
        return trajectory

    # -------------------------------------------------- per-replicate metrics
    def expected_regret(self, qualities) -> np.ndarray:
        """Per-replicate average regret with rewards replaced by expectations, shape ``(R,)``.

        The batched analogue of :func:`repro.core.regret.expected_regret`:
        ``eta_1 - (1/T) sum_t <Q^{t-1}_r, eta>`` for each replicate ``r``.
        ``qualities`` is either one shared ``(m,)`` vector or an ``(R, m)``
        matrix giving each row its own quality vector (the sweep-axis mode).
        """
        popularity = self.popularity_tensor()
        if popularity.shape[0] == 0:
            raise ValueError("need at least one recorded step")
        qualities = np.asarray(qualities, dtype=float)
        if qualities.ndim == 1:
            qualities = check_quality_vector(qualities, "qualities")
            per_step = popularity @ qualities  # (T, R)
            return float(qualities.max()) - per_step.mean(axis=0)
        if qualities.shape != (self.num_replicates, self.num_options):
            raise ValueError(
                f"qualities must have shape ({self.num_options},) or "
                f"({self.num_replicates}, {self.num_options}), got {qualities.shape}"
            )
        if not np.all(np.isfinite(qualities)):
            raise ValueError("every quality must be finite")
        if np.any(qualities < 0) or np.any(qualities > 1):
            raise ValueError("every quality must lie in [0, 1]")
        per_step = np.einsum("trj,rj->tr", popularity, qualities)
        return qualities.max(axis=1) - per_step.mean(axis=0)

    def empirical_regret(self, best_quality) -> np.ndarray:
        """Per-replicate realised regret ``eta_1 - (1/T) sum_t <Q^{t-1}_r, R^t_r>``, shape ``(R,)``.

        ``best_quality`` is a scalar or a shape-``(R,)`` array of per-row best
        qualities.
        """
        popularity = self.popularity_tensor()
        if popularity.shape[0] == 0:
            raise ValueError("need at least one recorded step")
        best_quality = np.asarray(best_quality, dtype=float)
        if best_quality.ndim not in (0, 1) or (
            best_quality.ndim == 1 and best_quality.shape != (self.num_replicates,)
        ):
            raise ValueError(
                f"best_quality must be a scalar or shape ({self.num_replicates},), "
                f"got shape {best_quality.shape}"
            )
        per_step = np.einsum(
            "trj,trj->tr", popularity, self.reward_tensor().astype(float)
        )
        return best_quality - per_step.mean(axis=0)

    def best_option_share(self, best_option) -> np.ndarray:
        """Per-replicate average pre-step popularity of ``best_option``, shape ``(R,)``.

        ``best_option`` is one shared option index or a shape-``(R,)`` array
        of per-row indices (each row tracks its own best option).
        """
        popularity = self.popularity_tensor()
        if popularity.shape[0] == 0:
            raise ValueError("need at least one recorded step")
        best_option = np.asarray(best_option)
        if not np.issubdtype(best_option.dtype, np.integer):
            raise ValueError("best_option must be an integer or integer array")
        if np.any(best_option < 0) or np.any(best_option >= self.num_options):
            raise ValueError(
                f"best_option {best_option} out of range for m={self.num_options}"
            )
        if best_option.ndim == 0:
            return popularity[:, :, int(best_option)].mean(axis=0)
        if best_option.shape != (self.num_replicates,):
            raise ValueError(
                f"per-row best_option must have shape ({self.num_replicates},), "
                f"got {best_option.shape}"
            )
        per_row = np.take_along_axis(
            popularity, best_option[None, :, None], axis=2
        )[:, :, 0]
        return per_row.mean(axis=0)

    def entropy_series(self) -> np.ndarray:
        """Post-step popularity entropy per replicate, shape ``(T, R)``."""
        if not self.states:
            return np.zeros((0, self.num_replicates))
        return np.stack([state.entropy() for state in self.states])


class BatchedDynamics:
    """Replicate-axis vectorised simulator of the two-stage dynamics.

    Advances ``R`` statistically independent copies of the finite-population
    dynamics in lock-step: stage 1 is one row-wise multinomial draw over the
    ``(R, m)`` consideration matrix, stage 2 one broadcast binomial thinning.
    All replicates share one generator, so a batch is reproducible from a
    single seed; per-replicate streams are *not* individually re-runnable (use
    :class:`~repro.core.dynamics.FinitePopulationDynamics` with per-seed loops
    when that is required).

    The rows of a batch need not share one experiment configuration: the
    adoption parameters (via :class:`~repro.core.adoption.RowwiseAdoptionRule`),
    the exploration rate (a shape-``(R,)`` ``mu`` in
    :class:`~repro.core.sampling.MixtureSampling`) and the population size (a
    shape-``(R,)`` int array) may all vary per row, which is how ``run_sweep``
    flattens an entire parameter grid times its replicates into one launch.
    Scalars everywhere reproduce the original homogeneous behaviour exactly.

    Parameters
    ----------
    num_replicates:
        Number of independent replicates ``R``.
    population_size:
        Number of individuals ``N`` — one int shared by all replicates, or a
        shape-``(R,)`` array of per-row sizes.
    num_options:
        Number of options ``m``.
    adoption_rule:
        The shared adoption function ``f`` (or a per-row
        :class:`~repro.core.adoption.RowwiseAdoptionRule`); defaults to the
        paper's symmetric rule with ``beta = 0.6``.
    sampling_rule:
        The sampling stage; same default policy as
        :class:`~repro.core.dynamics.FinitePopulationDynamics` (applied
        per-row when the adoption rule is per-row).
    initial_state:
        Starting counts — a single :class:`PopulationState` tiled across the
        batch, or a full :class:`BatchedPopulationState`.  Defaults to the
        near-uniform split in every replicate.
    rng:
        Seed or generator.  With ``num_replicates == 1`` the stream is
        consumed exactly as the sequential engine consumes it.
    backend:
        Array backend name or :class:`~repro.backends.ArrayBackend`
        (default NumPy — bit-identical to the pre-seam engine).
    precision:
        Storage :class:`~repro.backends.Precision` (name or instance).  The
        default float64/int64 is bit-identical to the historical behaviour;
        ``"float32"`` stores int32 counts and records float32 popularities
        while every random draw still consumes the stream in float64 (see
        :mod:`repro.backends.precision` for the full dtype contract).
    """

    def __init__(
        self,
        num_replicates: int,
        population_size: Union[int, np.ndarray],
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        sampling_rule: Optional[SamplingRule] = None,
        initial_state: Optional[Union[PopulationState, BatchedPopulationState]] = None,
        rng: RngLike = None,
        backend: BackendLike = None,
        precision: PrecisionLike = None,
    ) -> None:
        self._backend = get_namespace(backend)
        self._precision = resolve_precision(precision)
        self._xp = self._backend.xp
        self._num_replicates = check_positive_int(num_replicates, "num_replicates")
        if np.ndim(population_size) == 0:
            self._population_size: Union[int, np.ndarray] = check_positive_int(
                population_size, "population_size"
            )
        else:
            sizes = np.asarray(population_size, dtype=np.int64)
            if sizes.shape != (num_replicates,):
                raise ValueError(
                    f"per-replicate population_size must have shape "
                    f"({num_replicates},), got {sizes.shape}"
                )
            if np.any(sizes <= 0):
                raise ValueError("every population size must be positive")
            self._population_size = sizes.copy()
            self._population_size.setflags(write=False)
        self._num_options = check_positive_int(num_options, "num_options")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        rule_rows = np.ndim(self._adoption_rule.alpha) and np.size(
            self._adoption_rule.alpha
        )
        if rule_rows and rule_rows != num_replicates:
            raise ValueError(
                f"per-row adoption rule has {rule_rows} rows but the batch has "
                f"{num_replicates} replicates"
            )
        if sampling_rule is None:
            sampling_rule = MixtureSampling(
                default_exploration_rate(self._adoption_rule)
            )
        mu_rows = np.ndim(sampling_rule.exploration_rate) and np.size(
            sampling_rule.exploration_rate
        )
        if mu_rows and mu_rows != num_replicates:
            raise ValueError(
                f"per-row sampling rule has {mu_rows} rows but the batch has "
                f"{num_replicates} replicates"
            )
        self._sampling_rule = sampling_rule
        if initial_state is None:
            if np.ndim(self._population_size) == 0:
                initial_state = BatchedPopulationState.uniform(
                    num_replicates, self._population_size, num_options
                )
            else:
                initial_state = BatchedPopulationState.stack(
                    [
                        PopulationState.uniform(int(size), num_options)
                        for size in self._population_size
                    ]
                )
        elif isinstance(initial_state, PopulationState):
            initial_state = BatchedPopulationState.from_state(
                initial_state, num_replicates
            )
        if initial_state.num_replicates != num_replicates:
            raise ValueError("initial_state has the wrong number of replicates")
        if initial_state.num_options != num_options:
            raise ValueError("initial_state has the wrong number of options")
        expected_sizes = (
            np.full(num_replicates, self._population_size, dtype=np.int64)
            if np.ndim(self._population_size) == 0
            else self._population_size
        )
        if not np.array_equal(initial_state.population_sizes, expected_sizes):
            raise ValueError("initial_state has the wrong population size")
        # An int32 engine must be able to count its largest population.
        self._precision.check_count_value(
            int(np.max(initial_state.population_sizes)), "population_size"
        )
        if not self._precision.is_default:
            initial_state = BatchedPopulationState(
                counts=initial_state.counts.astype(self._precision.int_dtype),
                population_size=initial_state.population_size,
                time=initial_state.time,
            )
        self._initial_state = initial_state
        self._state = initial_state
        self._rng = self._backend.rng(rng)

    # ------------------------------------------------------------ properties
    @property
    def num_replicates(self) -> int:
        """Number of independent replicates ``R``."""
        return self._num_replicates

    @property
    def population_size(self) -> Union[int, np.ndarray]:
        """Number of individuals ``N`` per replicate (int, or ``(R,)`` array per-row)."""
        return self._population_size

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The shared adoption function ``f``."""
        return self._adoption_rule

    @property
    def sampling_rule(self) -> SamplingRule:
        """The sampling stage rule."""
        return self._sampling_rule

    @property
    def backend(self):
        """The :class:`~repro.backends.ArrayBackend` this engine runs on."""
        return self._backend

    @property
    def precision(self):
        """The storage :class:`~repro.backends.Precision` of the hot state."""
        return self._precision

    @property
    def state(self) -> BatchedPopulationState:
        """Current batched population state."""
        return self._state

    def popularity(self) -> np.ndarray:
        """Current per-replicate popularity ``Q^t``, shape ``(R, m)``."""
        return self._state.popularity()

    def reset(self, rng: RngLike = None) -> None:
        """Return every replicate to the initial state.

        Same contract as :meth:`FinitePopulationDynamics.reset
        <repro.core.dynamics.FinitePopulationDynamics.reset>`: with
        ``rng=None`` the (already advanced) generator is kept, so a
        subsequent run draws fresh randomness; pass the original seed to
        reproduce the first run exactly.
        """
        self._state = self._initial_state
        if rng is not None:
            self._rng = self._backend.rng(rng)

    # ------------------------------------------------------------------ step
    def step(self, rewards: np.ndarray) -> BatchedPopulationState:
        """Advance every replicate one step given the rewards ``R^{t+1}``.

        Parameters
        ----------
        rewards:
            Either an ``(R, m)`` matrix of per-replicate binary reward
            realisations (the usual case — each replicate observes its own
            draw of the environment) or a single ``(m,)`` vector shared by
            all replicates (the coupled / common-rewards regime).
        """
        xp = self._xp
        rewards = xp.asarray(rewards)
        if rewards.shape == (self._num_options,):
            rewards = xp.broadcast_to(
                rewards, (self._num_replicates, self._num_options)
            )
        elif rewards.shape != (self._num_replicates, self._num_options):
            raise ValueError(
                f"rewards must have shape ({self._num_replicates}, "
                f"{self._num_options}) or ({self._num_options},), got {rewards.shape}"
            )
        if xp.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        # The sampling/adoption math and both draws run in float64 at every
        # precision — the storage dtype is applied only to the new counts —
        # so all precisions consume the random stream identically.
        popularity = self._state.popularity()
        consideration = self._sampling_rule.consideration_probabilities_batch(
            popularity
        )
        selected = self._rng.multinomial(self._population_size, consideration)
        adopt_probabilities = self._adoption_rule.adopt_probabilities(rewards)
        new_counts = self._backend.to_numpy(
            self._rng.binomial(selected, adopt_probabilities)
        )
        self._state = BatchedPopulationState(
            counts=new_counts.astype(self._precision.int_dtype),
            population_size=self._population_size,
            time=self._state.time + 1,
        )
        return self._state

    def run(
        self,
        environment: RewardEnvironment,
        horizon: int,
    ) -> BatchedTrajectory:
        """Simulate ``horizon`` steps of every replicate against ``environment``.

        Each step draws one ``(R, m)`` reward batch via
        :meth:`~repro.environments.base.RewardEnvironment.sample_batch`, so
        replicates observe independent reward realisations from the same
        environment instance (sharing its quality path, if it drifts).
        """
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        trajectory = BatchedTrajectory(initial_state=self._state)
        float_dtype = self._precision.float_dtype
        for _ in range(horizon):
            pre_step_popularity = self._state.popularity(dtype=float_dtype)
            rewards = environment.sample_batch(self._num_replicates)
            new_state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, new_state)
        return trajectory


def simulate_batched_population(
    environment: RewardEnvironment,
    population_size: Union[int, np.ndarray],
    horizon: int,
    num_replicates: int,
    *,
    beta: Union[float, np.ndarray] = 0.6,
    mu: Union[None, float, np.ndarray] = None,
    alpha: Union[None, float, np.ndarray] = None,
    rng: RngLike = None,
    backend: BackendLike = None,
    precision: PrecisionLike = None,
) -> BatchedTrajectory:
    """One-call helper: run ``num_replicates`` replicates with paper defaults.

    The batched counterpart of
    :func:`~repro.core.dynamics.simulate_finite_population`; with
    ``num_replicates=1`` and matching seeds the two produce bit-identical
    trajectories.

    ``population_size``, ``beta``, ``alpha`` and ``mu`` each accept either a
    scalar (shared by all replicates, today's API) or a shape-``(R,)`` array
    giving every row its own value — the sweep-axis mode.  ``alpha`` defaults
    to the symmetric convention ``1 - beta``.
    """
    if np.ndim(beta) == 0 and alpha is None:
        adoption_rule: AdoptionRule = SymmetricAdoptionRule(float(beta))
    elif alpha is None:
        adoption_rule = RowwiseAdoptionRule.symmetric(beta)
    elif np.ndim(beta) == 0 and np.ndim(alpha) == 0:
        adoption_rule = GeneralAdoptionRule(float(alpha), float(beta))
    else:
        adoption_rule = RowwiseAdoptionRule(alpha, beta)
    dynamics = BatchedDynamics(
        num_replicates=num_replicates,
        population_size=population_size,
        num_options=environment.num_options,
        adoption_rule=adoption_rule,
        sampling_rule=MixtureSampling(mu) if mu is not None else None,
        rng=rng,
        backend=backend,
        precision=precision,
    )
    return dynamics.run(environment, horizon)
