"""The shared-reward coupling between finite and infinite dynamics (Lemma 4.5).

Lemma 4.5 couples the finite-population popularity ``Q^t`` and the
infinite-population distribution ``P^t`` by letting both processes observe the
same realisations of the reward variables ``R^t_j``.  Under that coupling,

    ``1/(1 + delta_t) <= P^t_j / Q^t_j <= 1 + delta_t``,   ``delta_t = 5^t delta''``

with probability at least ``1 - 6 t m / N^10``.  :func:`run_coupled_dynamics`
realises the coupling in simulation and records the worst-case multiplicative
ratio over options at every step so experiments (E4) can compare the measured
ratio against the lemma's bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dynamics import FinitePopulationDynamics
from repro.core.infinite import InfinitePopulationDynamics, InfiniteTrajectory
from repro.core.state import Trajectory
from repro.core.theory import TheoryBounds
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class CoupledRun:
    """Result of one coupled simulation.

    Attributes
    ----------
    finite_trajectory:
        Trajectory of the finite-population dynamics.
    infinite_trajectory:
        Trajectory of the infinite-population dynamics on the same rewards.
    ratio_series:
        For each step ``t`` (1-indexed end of step), the worst-case
        multiplicative deviation ``max_j max(P^t_j / Q^t_j, Q^t_j / P^t_j)``.
        A value of ``1`` means the two distributions coincide.
    bound_series:
        Lemma 4.5's bound ``1 + 5^t * delta''`` for the same steps, or ``None``
        when the theory bounds were not supplied/computable.
    """

    finite_trajectory: Trajectory
    infinite_trajectory: InfiniteTrajectory
    ratio_series: np.ndarray
    bound_series: Optional[np.ndarray]

    @property
    def horizon(self) -> int:
        """Number of coupled steps."""
        return int(self.ratio_series.size)

    def max_ratio(self) -> float:
        """Worst deviation over the whole run."""
        return float(self.ratio_series.max()) if self.ratio_series.size else 1.0

    def within_bound(self) -> Optional[np.ndarray]:
        """Boolean series: measured ratio within the lemma's bound at each step."""
        if self.bound_series is None:
            return None
        return self.ratio_series <= self.bound_series


def worst_case_ratio(p: np.ndarray, q: np.ndarray, floor: float = 1e-12) -> float:
    """The symmetric multiplicative deviation ``max_j max(p_j/q_j, q_j/p_j)``.

    Entries where both distributions put (numerically) zero mass are ignored;
    an entry where exactly one of them is zero yields an infinite ratio, which
    is reported as ``numpy.inf``.
    """
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape or p.ndim != 1:
        raise ValueError("p and q must be 1-D vectors of equal length")
    ratios = []
    for pj, qj in zip(p, q):
        if pj <= floor and qj <= floor:
            continue
        if pj <= floor or qj <= floor:
            return float("inf")
        ratios.append(max(pj / qj, qj / pj))
    return float(max(ratios)) if ratios else 1.0


def run_coupled_dynamics(
    environment: RewardEnvironment,
    population_size: int,
    horizon: int,
    *,
    beta: float = 0.6,
    mu: Optional[float] = None,
    rng: RngLike = None,
    include_bounds: bool = True,
) -> CoupledRun:
    """Simulate the Lemma 4.5 coupling for ``horizon`` steps.

    Both dynamics use the paper's defaults (symmetric adoption, mixture
    sampling with ``mu = delta^2/6`` unless overridden) and start from the
    uniform distribution, exactly as the lemma assumes (``P^0 = Q^0``).
    """
    from repro.core.adoption import SymmetricAdoptionRule
    from repro.core.sampling import MixtureSampling

    population_size = check_positive_int(population_size, "population_size")
    horizon = check_positive_int(horizon, "horizon")
    generator = ensure_rng(rng)

    adoption_rule = SymmetricAdoptionRule(beta)
    if mu is None:
        delta = adoption_rule.delta
        mu = min(1.0, delta**2 / 6.0) if np.isfinite(delta) and delta > 0 else 0.01
    sampling_rule = MixtureSampling(mu)

    rewards = environment.sample_many(horizon)

    finite = FinitePopulationDynamics(
        population_size=population_size,
        num_options=environment.num_options,
        adoption_rule=adoption_rule,
        sampling_rule=sampling_rule,
        rng=generator,
    )
    infinite = InfinitePopulationDynamics(
        num_options=environment.num_options,
        adoption_rule=adoption_rule,
        sampling_rule=sampling_rule,
    )

    finite_trajectory = Trajectory(initial_state=finite.state)
    infinite_trajectory = InfiniteTrajectory(
        initial_distribution=infinite.distribution
    )
    ratios = []
    for reward_vector in rewards:
        finite_pre = finite.popularity()
        infinite_pre = infinite.distribution
        finite_state = finite.step(reward_vector)
        infinite_distribution = infinite.step(reward_vector)

        finite_trajectory.record(finite_pre, reward_vector, finite_state)
        infinite_trajectory.pre_step_distributions.append(infinite_pre)
        infinite_trajectory.rewards.append(np.asarray(reward_vector, dtype=np.int8))
        infinite_trajectory.distributions.append(infinite_distribution)
        infinite_trajectory.log_potentials.append(infinite.log_potential)

        ratios.append(
            worst_case_ratio(infinite_distribution, finite_state.popularity())
        )

    bound_series = None
    if include_bounds:
        try:
            bounds = TheoryBounds(
                num_options=environment.num_options,
                beta=beta,
                mu=mu,
                population_size=population_size,
                strict=False,
            )
            dpp = bounds.adoption_concentration()
            bound_series = 1.0 + 5.0 ** np.arange(1, horizon + 1) * dpp
        except (ValueError, OverflowError):
            bound_series = None

    return CoupledRun(
        finite_trajectory=finite_trajectory,
        infinite_trajectory=infinite_trajectory,
        ratio_series=np.asarray(ratios),
        bound_series=bound_series,
    )
