"""Population state and trajectory recording.

:class:`PopulationState` is an immutable snapshot of the finite-population
dynamics at one time step: the per-option adoption counts ``D^t_j`` (from
which the popularity ``Q^t``, entropy, occupancy floor, etc. derive).
:class:`Trajectory` accumulates snapshots plus the rewards observed between
them and offers the aggregate views the regret and coupling analyses need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PopulationState:
    """Snapshot of the group at one time step.

    Attributes
    ----------
    counts:
        Per-option adoption counts ``D^t_j`` (length ``m``); agents sitting
        out are not counted.
    population_size:
        Total number of individuals ``N`` (committed + sitting out).
    time:
        The time step index this snapshot corresponds to.
    """

    counts: np.ndarray
    population_size: int
    time: int = 0

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts, dtype=np.int64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError("counts must be a non-empty 1-D array")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        object.__setattr__(self, "counts", counts)
        check_positive_int(self.population_size, "population_size")
        if counts.sum() > self.population_size:
            raise ValueError(
                f"committed count {counts.sum()} exceeds population size "
                f"{self.population_size}"
            )

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return int(self.counts.size)

    @property
    def committed(self) -> int:
        """Number of committed individuals ``sum_j D^t_j``."""
        return int(self.counts.sum())

    @property
    def sitting_out(self) -> int:
        """Number of individuals not holding any option this step."""
        return self.population_size - self.committed

    def popularity(self) -> np.ndarray:
        """Popularity distribution ``Q^t``; uniform if nobody is committed."""
        total = self.counts.sum()
        if total == 0:
            return np.full(self.num_options, 1.0 / self.num_options)
        return self.counts / total

    def min_popularity(self) -> float:
        """The occupancy floor ``min_j Q^t_j`` tracked by Proposition 4.3."""
        return float(self.popularity().min())

    def entropy(self) -> float:
        """Shannon entropy (nats) of the popularity distribution."""
        popularity = self.popularity()
        nonzero = popularity[popularity > 0]
        return float(-(nonzero * np.log(nonzero)).sum())

    def leader(self) -> int:
        """Most popular option (ties broken toward lower index)."""
        return int(np.argmax(self.counts))

    @classmethod
    def uniform(
        cls, population_size: int, num_options: int, time: int = 0
    ) -> "PopulationState":
        """Near-uniform initial state: ``N`` individuals spread evenly over ``m`` options.

        Matches the paper's initialisation ``Q^0_j = 1/m`` as closely as an
        integer assignment allows (remainders go to the lowest-index options).
        """
        population_size = check_positive_int(population_size, "population_size")
        num_options = check_positive_int(num_options, "num_options")
        base, remainder = divmod(population_size, num_options)
        counts = np.full(num_options, base, dtype=np.int64)
        counts[:remainder] += 1
        return cls(counts=counts, population_size=population_size, time=time)

    @classmethod
    def from_counts(
        cls, counts: Sequence[int], population_size: Optional[int] = None, time: int = 0
    ) -> "PopulationState":
        """Build a state from explicit counts (``population_size`` defaults to their sum)."""
        counts = np.asarray(counts, dtype=np.int64)
        if population_size is None:
            population_size = int(counts.sum())
        return cls(counts=counts, population_size=population_size, time=time)


@dataclass
class Trajectory:
    """Time series of population states, rewards and the distributions they induce.

    The trajectory stores, for each step ``t = 1..T``:

    * the popularity ``Q^{t-1}`` *before* the step (used in the regret sum
      ``E[Q^{t-1}_j R^t_j]``),
    * the reward vector ``R^t`` observed during the step, and
    * the resulting state after the step.
    """

    initial_state: PopulationState
    states: List[PopulationState] = field(default_factory=list)
    rewards: List[np.ndarray] = field(default_factory=list)
    pre_step_popularities: List[np.ndarray] = field(default_factory=list)

    def record(
        self,
        pre_step_popularity: np.ndarray,
        rewards: np.ndarray,
        new_state: PopulationState,
    ) -> None:
        """Append one step's observations to the trajectory."""
        self.pre_step_popularities.append(np.asarray(pre_step_popularity, dtype=float))
        self.rewards.append(np.asarray(rewards, dtype=np.int8))
        self.states.append(new_state)

    @property
    def horizon(self) -> int:
        """Number of recorded steps ``T``."""
        return len(self.states)

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self.initial_state.num_options

    def popularity_matrix(self) -> np.ndarray:
        """Matrix of pre-step popularities ``Q^{t-1}``, shape ``(T, m)``."""
        if not self.pre_step_popularities:
            return np.zeros((0, self.num_options))
        return np.stack(self.pre_step_popularities)

    def reward_matrix(self) -> np.ndarray:
        """Matrix of rewards ``R^t``, shape ``(T, m)``."""
        if not self.rewards:
            return np.zeros((0, self.num_options), dtype=np.int8)
        return np.stack(self.rewards)

    def final_state(self) -> PopulationState:
        """The last recorded state (the initial state if no steps recorded)."""
        return self.states[-1] if self.states else self.initial_state

    def best_option_popularity(self, best_option: int) -> np.ndarray:
        """Time series of the best option's pre-step popularity ``Q^{t-1}_1``."""
        matrix = self.popularity_matrix()
        if matrix.shape[0] == 0:
            return np.zeros(0)
        return matrix[:, best_option]

    def min_popularity_series(self) -> np.ndarray:
        """Time series of ``min_j Q^t_j`` after each step (occupancy floor, Prop 4.3)."""
        return np.array([state.min_popularity() for state in self.states])

    def leader_series(self) -> np.ndarray:
        """Time series of the most popular option after each step."""
        return np.array([state.leader() for state in self.states], dtype=np.int64)
