"""Core of the reproduction: the paper's learning dynamics and its analysis.

Modules
-------
``adoption``
    The adoption functions ``f_i`` of stage (2), including the paper's
    symmetric ``alpha = 1 - beta`` convention and general ``(alpha, beta)``.
``sampling``
    The sampling stage (1): mixture of uniform exploration (weight ``mu``) and
    copy-a-random-group-member (weight ``1 - mu``), plus the ablation variants.
``state``
    Population state (per-option counts / popularity) and trajectory recording.
``dynamics``
    The finite-population distributed learning dynamics — a fast vectorised
    simulator and a faithful agent-based simulator.
``batched``
    The replicate-axis batched engine: ``R`` independent replicates advanced
    as one ``(R, m)`` count matrix per step, with per-replicate trajectory
    views and batched metric accessors.
``infinite``
    The infinite-population limit: the stochastic multiplicative-weights
    process of Eq. (1).
``coupling``
    The shared-reward coupling between finite and infinite dynamics used in
    Lemma 4.5.
``regret``
    Average-regret accounting (``Regret_N(T)``, ``Regret_inf(T)``) and
    best-option share.
``theory``
    Every constant and bound appearing in Theorems 4.3/4.4/4.6, Lemma 4.5 and
    Propositions 4.1–4.3, as executable functions.
``epochs``
    The epoch decomposition used in the large-``T`` part of Theorem 4.4.
"""

from repro.core.adoption import (
    AdoptionRule,
    AlwaysAdoptRule,
    GeneralAdoptionRule,
    RowwiseAdoptionRule,
    SymmetricAdoptionRule,
)
from repro.core.sampling import (
    MixtureSampling,
    PopularityOnlySampling,
    SamplingRule,
    UniformSampling,
)
from repro.core.state import PopulationState, Trajectory
from repro.core.dynamics import (
    AgentBasedDynamics,
    FinitePopulationDynamics,
    simulate_finite_population,
)
from repro.core.batched import (
    BatchedDynamics,
    BatchedPopulationState,
    BatchedTrajectory,
    simulate_batched_population,
)
from repro.core.infinite import InfinitePopulationDynamics, simulate_infinite_population
from repro.core.coupling import CoupledRun, run_coupled_dynamics
from repro.core.regret import (
    RegretAccumulator,
    average_regret,
    best_option_share,
    empirical_regret,
)
from repro.core.theory import TheoryBounds, optimal_beta
from repro.core.epochs import EpochSchedule
from repro.core.heterogeneous import AgentType, HeterogeneousPopulationDynamics

__all__ = [
    "AdoptionRule",
    "AlwaysAdoptRule",
    "GeneralAdoptionRule",
    "RowwiseAdoptionRule",
    "SymmetricAdoptionRule",
    "SamplingRule",
    "MixtureSampling",
    "PopularityOnlySampling",
    "UniformSampling",
    "PopulationState",
    "Trajectory",
    "FinitePopulationDynamics",
    "AgentBasedDynamics",
    "simulate_finite_population",
    "BatchedDynamics",
    "BatchedPopulationState",
    "BatchedTrajectory",
    "simulate_batched_population",
    "InfinitePopulationDynamics",
    "simulate_infinite_population",
    "CoupledRun",
    "run_coupled_dynamics",
    "RegretAccumulator",
    "average_regret",
    "best_option_share",
    "empirical_regret",
    "TheoryBounds",
    "optimal_beta",
    "EpochSchedule",
    "AgentType",
    "HeterogeneousPopulationDynamics",
]
