"""Adoption rules — the stochastic functions ``f_i`` of stage (2).

In the paper an individual who considers option ``j`` observes the fresh
signal ``R^{t+1}_j`` and commits with probability ``beta`` if the signal is
good and ``alpha`` if it is bad (``alpha <= beta``), otherwise sitting out for
that step.  The exposition sets ``alpha = 1 - beta`` — implemented by
:class:`SymmetricAdoptionRule` — but the analysis only needs ``alpha < beta``
(:class:`GeneralAdoptionRule`).  :class:`AlwaysAdoptRule` (``alpha = beta = 1``)
is the "sampling-only" ablation the paper argues does not converge to the best
option.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.utils.validation import check_probability


class AdoptionRule(abc.ABC):
    """Maps the observed binary signal to a probability of committing."""

    @abc.abstractmethod
    def adopt_probability(self, signal: int) -> float:
        """Probability of adopting the considered option given ``signal`` ∈ {0, 1}."""

    @property
    @abc.abstractmethod
    def alpha(self) -> float:
        """Adoption probability on a bad signal, ``E[f(0)]``."""

    @property
    @abc.abstractmethod
    def beta(self) -> float:
        """Adoption probability on a good signal, ``E[f(1)]``."""

    def adopt_probabilities(self, signals: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`adopt_probability` over an array of binary signals."""
        signals = np.asarray(signals)
        return np.where(signals == 1, self.beta, self.alpha).astype(float)

    @property
    def delta(self) -> float:
        """The paper's rate parameter ``delta = ln(beta / alpha)``.

        With the symmetric convention ``alpha = 1 - beta`` this is
        ``ln(beta / (1 - beta))``, the quantity every bound in the paper is
        expressed in.  Infinite when ``alpha == 0``.
        """
        if self.alpha == 0.0:
            return math.inf
        return math.log(self.beta / self.alpha)

    def is_informative(self) -> bool:
        """Whether good signals are strictly more persuasive than bad ones (``beta > alpha``)."""
        return self.beta > self.alpha

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(alpha={self.alpha:.4f}, beta={self.beta:.4f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdoptionRule):
            return NotImplemented
        return (
            math.isclose(self.alpha, other.alpha) and math.isclose(self.beta, other.beta)
        )

    def __hash__(self) -> int:
        return hash((round(self.alpha, 12), round(self.beta, 12)))


class GeneralAdoptionRule(AdoptionRule):
    """Adoption with independent parameters ``0 <= alpha <= beta <= 1``."""

    def __init__(self, alpha: float, beta: float) -> None:
        alpha = check_probability(alpha, "alpha")
        beta = check_probability(beta, "beta")
        if alpha > beta:
            raise ValueError(
                f"alpha ({alpha}) must not exceed beta ({beta}); the model requires "
                "E[f(1)] >= E[f(0)]"
            )
        self._alpha = alpha
        self._beta = beta

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def beta(self) -> float:
        return self._beta

    def adopt_probability(self, signal: int) -> float:
        if signal not in (0, 1):
            raise ValueError(f"signal must be 0 or 1, got {signal}")
        return self._beta if signal == 1 else self._alpha


class SymmetricAdoptionRule(GeneralAdoptionRule):
    """The paper's exposition convention ``alpha = 1 - beta`` with ``beta >= 1/2``.

    The theorems additionally require ``1/2 < beta <= e/(e+1)`` for their
    constants; that range restriction lives in
    :class:`repro.core.theory.TheoryBounds`, not here, so simulations can
    explore the full ``beta`` range.
    """

    def __init__(self, beta: float) -> None:
        beta = check_probability(beta, "beta")
        if beta < 0.5:
            raise ValueError(
                f"SymmetricAdoptionRule requires beta >= 1/2 (got {beta}); use "
                "GeneralAdoptionRule for arbitrary alpha/beta"
            )
        super().__init__(alpha=1.0 - beta, beta=beta)


class AlwaysAdoptRule(GeneralAdoptionRule):
    """Always adopt regardless of the signal (``alpha = beta = 1``).

    This removes the adoption stage entirely, leaving only the sampling stage
    — the ablation the paper (Section 3) argues does not always converge to
    the best option.
    """

    def __init__(self) -> None:
        super().__init__(alpha=1.0, beta=1.0)
