"""Adoption rules — the stochastic functions ``f_i`` of stage (2).

In the paper an individual who considers option ``j`` observes the fresh
signal ``R^{t+1}_j`` and commits with probability ``beta`` if the signal is
good and ``alpha`` if it is bad (``alpha <= beta``), otherwise sitting out for
that step.  The exposition sets ``alpha = 1 - beta`` — implemented by
:class:`SymmetricAdoptionRule` — but the analysis only needs ``alpha < beta``
(:class:`GeneralAdoptionRule`).  :class:`AlwaysAdoptRule` (``alpha = beta = 1``)
is the "sampling-only" ablation the paper argues does not converge to the best
option.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.utils.validation import check_probability


class AdoptionRule(abc.ABC):
    """Maps the observed binary signal to a probability of committing."""

    @abc.abstractmethod
    def adopt_probability(self, signal: int) -> float:
        """Probability of adopting the considered option given ``signal`` ∈ {0, 1}."""

    @property
    @abc.abstractmethod
    def alpha(self) -> float:
        """Adoption probability on a bad signal, ``E[f(0)]``."""

    @property
    @abc.abstractmethod
    def beta(self) -> float:
        """Adoption probability on a good signal, ``E[f(1)]``."""

    def adopt_probabilities(self, signals: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`adopt_probability` over an array of binary signals."""
        signals = np.asarray(signals)
        return np.where(signals == 1, self.beta, self.alpha).astype(float)

    @property
    def delta(self) -> float:
        """The paper's rate parameter ``delta = ln(beta / alpha)``.

        With the symmetric convention ``alpha = 1 - beta`` this is
        ``ln(beta / (1 - beta))``, the quantity every bound in the paper is
        expressed in.  Infinite when ``alpha == 0``.
        """
        if self.alpha == 0.0:
            return math.inf
        return math.log(self.beta / self.alpha)

    def is_informative(self) -> bool:
        """Whether good signals are strictly more persuasive than bad ones (``beta > alpha``)."""
        return self.beta > self.alpha

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(alpha={self.alpha:.4f}, beta={self.beta:.4f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdoptionRule):
            return NotImplemented
        if np.ndim(self.alpha) != 0 or np.ndim(other.alpha) != 0:
            # Scalar and per-row rules never compare equal; RowwiseAdoptionRule
            # overrides equality for the array/array case.
            return NotImplemented
        return math.isclose(self.alpha, other.alpha) and math.isclose(
            self.beta, other.beta
        )

    def __hash__(self) -> int:
        return hash((round(self.alpha, 12), round(self.beta, 12)))


class GeneralAdoptionRule(AdoptionRule):
    """Adoption with independent parameters ``0 <= alpha <= beta <= 1``."""

    def __init__(self, alpha: float, beta: float) -> None:
        alpha = check_probability(alpha, "alpha")
        beta = check_probability(beta, "beta")
        if alpha > beta:
            raise ValueError(
                f"alpha ({alpha}) must not exceed beta ({beta}); the model requires "
                "E[f(1)] >= E[f(0)]"
            )
        self._alpha = alpha
        self._beta = beta

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def beta(self) -> float:
        return self._beta

    def adopt_probability(self, signal: int) -> float:
        if signal not in (0, 1):
            raise ValueError(f"signal must be 0 or 1, got {signal}")
        return self._beta if signal == 1 else self._alpha


class SymmetricAdoptionRule(GeneralAdoptionRule):
    """The paper's exposition convention ``alpha = 1 - beta`` with ``beta >= 1/2``.

    The theorems additionally require ``1/2 < beta <= e/(e+1)`` for their
    constants; that range restriction lives in
    :class:`repro.core.theory.TheoryBounds`, not here, so simulations can
    explore the full ``beta`` range.
    """

    def __init__(self, beta: float) -> None:
        beta = check_probability(beta, "beta")
        if beta < 0.5:
            raise ValueError(
                f"SymmetricAdoptionRule requires beta >= 1/2 (got {beta}); use "
                "GeneralAdoptionRule for arbitrary alpha/beta"
            )
        super().__init__(alpha=1.0 - beta, beta=beta)


class AlwaysAdoptRule(GeneralAdoptionRule):
    """Always adopt regardless of the signal (``alpha = beta = 1``).

    This removes the adoption stage entirely, leaving only the sampling stage
    — the ablation the paper (Section 3) argues does not always converge to
    the best option.
    """

    def __init__(self) -> None:
        super().__init__(alpha=1.0, beta=1.0)


class RowwiseAdoptionRule(AdoptionRule):
    """Per-replicate adoption parameters for the batched engine.

    Each row ``r`` of an ``(R, m)`` batch adopts with its own probabilities
    ``alpha_r`` / ``beta_r``, which lets one
    :class:`~repro.core.batched.BatchedDynamics` launch advance replicates of
    *different* experiment configurations (the sweep-axis batching of
    ``run_sweep``).  Scalars broadcast against arrays, so
    ``RowwiseAdoptionRule(0.35, beta_array)`` gives every row the same
    ``alpha``.

    Parameters
    ----------
    alpha:
        Adoption probability on a bad signal — a scalar or a shape-``(R,)``
        array.
    beta:
        Adoption probability on a good signal — a scalar or a shape-``(R,)``
        array.  Elementwise ``0 <= alpha_r <= beta_r <= 1`` is required.
    """

    def __init__(self, alpha, beta) -> None:
        alpha = np.atleast_1d(np.asarray(alpha, dtype=float))
        beta = np.atleast_1d(np.asarray(beta, dtype=float))
        if alpha.ndim != 1 or beta.ndim != 1:
            raise ValueError("alpha and beta must be scalars or 1-D (R,) arrays")
        try:
            alpha, beta = np.broadcast_arrays(alpha, beta)
        except ValueError as error:
            raise ValueError(
                f"alpha (shape {alpha.shape}) and beta (shape {beta.shape}) "
                "do not broadcast to a common (R,) shape"
            ) from error
        if not (np.all(np.isfinite(alpha)) and np.all(np.isfinite(beta))):
            raise ValueError("alpha and beta must be finite elementwise")
        if np.any(alpha < 0) or np.any(beta > 1):
            raise ValueError("alpha and beta must lie in [0, 1] elementwise")
        if np.any(alpha > beta):
            worst = int(np.argmax(alpha - beta))
            raise ValueError(
                f"alpha must not exceed beta elementwise; row {worst} has "
                f"alpha={alpha[worst]} > beta={beta[worst]}"
            )
        self._alpha = alpha.copy()
        self._beta = beta.copy()
        self._alpha.setflags(write=False)
        self._beta.setflags(write=False)

    @classmethod
    def symmetric(cls, beta) -> "RowwiseAdoptionRule":
        """Per-row analogue of :class:`SymmetricAdoptionRule`: ``alpha_r = 1 - beta_r``."""
        beta = np.atleast_1d(np.asarray(beta, dtype=float))
        if np.any(beta < 0.5) or np.any(beta > 1.0):
            raise ValueError(
                "symmetric rule requires 1/2 <= beta <= 1 elementwise; use "
                "RowwiseAdoptionRule(alpha, beta) for arbitrary parameters"
            )
        return cls(1.0 - beta, beta)

    @property
    def num_rows(self) -> int:
        """Number of parameter rows ``R``."""
        return int(self._beta.size)

    @property
    def alpha(self) -> np.ndarray:
        """Per-row bad-signal adoption probabilities, shape ``(R,)``."""
        return self._alpha

    @property
    def beta(self) -> np.ndarray:
        """Per-row good-signal adoption probabilities, shape ``(R,)``."""
        return self._beta

    @property
    def delta(self) -> np.ndarray:
        """Per-row rate parameters ``delta_r = ln(beta_r / alpha_r)`` (inf where ``alpha_r = 0``)."""
        ratio = np.divide(
            self._beta,
            self._alpha,
            out=np.full(self._beta.shape, math.inf),
            where=self._alpha > 0,
        )
        return np.log(ratio)

    def is_informative(self) -> bool:
        """Whether every row has ``beta_r > alpha_r``."""
        return bool(np.all(self._beta > self._alpha))

    def adopt_probability(self, signal: int):
        """Per-row adoption probabilities for one shared signal, shape ``(R,)``."""
        if signal not in (0, 1):
            raise ValueError(f"signal must be 0 or 1, got {signal}")
        return (self._beta if signal == 1 else self._alpha).copy()

    def adopt_probabilities(self, signals: np.ndarray) -> np.ndarray:
        """Per-row probabilities for an ``(R, m)`` signal matrix.

        Row ``r`` of the result uses ``(alpha_r, beta_r)``; a 1-D signal
        vector is treated as shared by all rows.
        """
        signals = np.asarray(signals)
        if signals.ndim == 1:
            signals = np.broadcast_to(signals, (self.num_rows, signals.size))
        if signals.ndim != 2 or signals.shape[0] != self.num_rows:
            raise ValueError(
                f"signals must have shape ({self.num_rows}, m), got {signals.shape}"
            )
        return np.where(
            signals == 1, self._beta[:, None], self._alpha[:, None]
        ).astype(float)

    def row(self, index: int) -> GeneralAdoptionRule:
        """The scalar :class:`GeneralAdoptionRule` governing row ``index``."""
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row {index} out of range for R={self.num_rows}")
        return GeneralAdoptionRule(float(self._alpha[index]), float(self._beta[index]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(R={self.num_rows}, "
            f"alpha∈[{self._alpha.min():.3f}, {self._alpha.max():.3f}], "
            f"beta∈[{self._beta.min():.3f}, {self._beta.max():.3f}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RowwiseAdoptionRule):
            return NotImplemented
        return np.array_equal(self._alpha, other._alpha) and np.array_equal(
            self._beta, other._beta
        )

    def __hash__(self) -> int:
        return hash((self._alpha.tobytes(), self._beta.tobytes()))
