"""The finite-population distributed learning dynamics (Section 2.1).

Two interchangeable simulators are provided:

* :class:`FinitePopulationDynamics` — a vectorised simulator that tracks only
  the per-option adoption counts ``D^t_j``.  Because all individuals are
  exchangeable when the adoption rules are identical, the joint evolution of
  the counts is exactly a multinomial draw (stage 1, Eq. 2) followed by
  per-option binomial thinning (stage 2, Eq. 3); no per-agent loop is needed.
  This is the implementation used by benchmarks and large-``N`` experiments.

* :class:`AgentBasedDynamics` — a faithful agent-by-agent simulator built on
  :class:`repro.agents.Population`.  It supports heterogeneous adoption rules
  and pluggable companion selection (used by the social-network extension in
  :mod:`repro.network`), at the cost of ``O(N)`` work per step.

The test suite cross-validates the two implementations statistically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.agents.population import Population
from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.sampling import MixtureSampling, SamplingRule, default_exploration_rate
from repro.core.state import PopulationState, Trajectory
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

CompanionSelector = Callable[[int, Population, np.random.Generator], Optional[int]]
"""Given (agent_id, population, rng), return the option observed from a companion.

Returning ``None`` means no committed companion was available and the agent
falls back to uniform exploration for this step.
"""


class FinitePopulationDynamics:
    """Vectorised simulator of the two-stage finite-population dynamics.

    Parameters
    ----------
    population_size:
        Number of individuals ``N``.
    num_options:
        Number of options ``m``.
    adoption_rule:
        The (shared) adoption function ``f``; defaults to the paper's
        symmetric rule with ``beta = 0.6``.
    sampling_rule:
        The sampling stage; defaults to :class:`MixtureSampling` with
        ``mu = delta^2 / 6`` evaluated at the adoption rule's ``delta``
        (the largest exploration rate the theorems allow), or ``mu = 0.01``
        when ``delta`` is degenerate.
    initial_state:
        Starting counts; defaults to the near-uniform split matching
        ``Q^0_j = 1/m``.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        population_size: int,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        sampling_rule: Optional[SamplingRule] = None,
        initial_state: Optional[PopulationState] = None,
        rng: RngLike = None,
    ) -> None:
        self._population_size = check_positive_int(population_size, "population_size")
        self._num_options = check_positive_int(num_options, "num_options")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        if sampling_rule is None:
            sampling_rule = MixtureSampling(
                default_exploration_rate(self._adoption_rule)
            )
        self._sampling_rule = sampling_rule
        if initial_state is None:
            initial_state = PopulationState.uniform(population_size, num_options)
        if initial_state.num_options != num_options:
            raise ValueError("initial_state has the wrong number of options")
        if initial_state.population_size != population_size:
            raise ValueError("initial_state has the wrong population size")
        self._initial_state = initial_state
        self._state = initial_state
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------ properties
    @property
    def population_size(self) -> int:
        """Number of individuals ``N``."""
        return self._population_size

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The shared adoption function ``f``."""
        return self._adoption_rule

    @property
    def sampling_rule(self) -> SamplingRule:
        """The sampling stage rule."""
        return self._sampling_rule

    @property
    def state(self) -> PopulationState:
        """Current population state."""
        return self._state

    def popularity(self) -> np.ndarray:
        """Current popularity distribution ``Q^t``."""
        return self._state.popularity()

    def reset(self, rng: RngLike = None) -> None:
        """Return to the initial state (optionally reseeding the generator).

        Generator contract: with ``rng=None`` only the *state* rewinds — the
        generator keeps its advanced position, so a run after ``reset()``
        draws fresh randomness and will **not** reproduce the previous run.
        To replay a run exactly from the original seed, pass that seed (or a
        freshly seeded generator) explicitly: ``reset(rng=original_seed)``.
        """
        self._state = self._initial_state
        if rng is not None:
            self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------ step
    def step(self, rewards: Sequence[int]) -> PopulationState:
        """Advance the dynamics one step given the reward vector ``R^{t+1}``.

        Stage 1 draws the consideration counts ``S^{t+1}_j`` as one multinomial
        sample of size ``N`` with probabilities ``(1-mu) Q^t_j + mu/m``; stage 2
        thins each count binomially with probability ``beta`` (good signal) or
        ``alpha`` (bad signal).
        """
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        popularity = self._state.popularity()
        consideration = self._sampling_rule.consideration_probabilities(popularity)
        selected = self._rng.multinomial(self._population_size, consideration)
        adopt_probabilities = self._adoption_rule.adopt_probabilities(rewards)
        new_counts = self._rng.binomial(selected, adopt_probabilities)
        self._state = PopulationState(
            counts=new_counts.astype(np.int64),
            population_size=self._population_size,
            time=self._state.time + 1,
        )
        return self._state

    def run(
        self,
        environment: RewardEnvironment,
        horizon: int,
    ) -> Trajectory:
        """Simulate ``horizon`` steps against ``environment`` and record the trajectory."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        trajectory = Trajectory(initial_state=self._state)
        for _ in range(horizon):
            pre_step_popularity = self._state.popularity()
            rewards = environment.sample()
            new_state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, new_state)
        return trajectory


class AgentBasedDynamics:
    """Agent-by-agent reference simulator of the same dynamics.

    Each individual independently runs the two-stage protocol exactly as the
    paper describes it: pick a companion uniformly at random and observe the
    option it held at the previous step (or explore with probability ``mu``),
    then adopt based on the fresh quality signal via its own ``f_i``.

    Parameters
    ----------
    population:
        The group of agents (possibly heterogeneous).
    exploration_rate:
        The probability ``mu`` of ignoring the companion and exploring.
    companion_selector:
        Optional override for how a companion's option is obtained; used by
        the social-network extension to restrict observation to neighbours.
        The default samples uniformly among *committed* individuals, matching
        the population-level sampling probabilities of Eq. (2).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        population: Population,
        exploration_rate: float = 0.05,
        companion_selector: Optional[CompanionSelector] = None,
        rng: RngLike = None,
    ) -> None:
        if not isinstance(population, Population):
            raise TypeError("population must be a Population instance")
        if not 0.0 <= exploration_rate <= 1.0:
            raise ValueError(
                f"exploration_rate must be in [0, 1], got {exploration_rate}"
            )
        self._population = population
        self._mu = float(exploration_rate)
        self._companion_selector = (
            companion_selector or self._default_companion_selector
        )
        self._rng = ensure_rng(rng)
        self._time = 0

    @staticmethod
    def _default_companion_selector(
        agent_id: int, population: Population, rng: np.random.Generator
    ) -> Optional[int]:
        """Observe the option of a uniformly random committed group member."""
        committed_options = [
            agent.current_option
            for agent in population
            if agent.current_option is not None
        ]
        if not committed_options:
            return None
        return committed_options[int(rng.integers(len(committed_options)))]

    # ------------------------------------------------------------ properties
    @property
    def population(self) -> Population:
        """The simulated group."""
        return self._population

    @property
    def exploration_rate(self) -> float:
        """The exploration probability ``mu``."""
        return self._mu

    @property
    def time(self) -> int:
        """Number of steps simulated so far."""
        return self._time

    def state(self) -> PopulationState:
        """Current population state derived from the agents' choices."""
        return PopulationState(
            counts=self._population.option_counts(),
            population_size=self._population.size,
            time=self._time,
        )

    # ------------------------------------------------------------------ step
    def step(self, rewards: Sequence[int]) -> PopulationState:
        """Advance every agent one step given the reward vector ``R^{t+1}``."""
        rewards = np.asarray(rewards)
        num_options = self._population.num_options
        if rewards.shape != (num_options,):
            raise ValueError(
                f"rewards must have shape ({num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        # Stage 1 for everyone is based on the *previous* step's choices, so
        # compute all considered options before any agent updates.
        considered: List[int] = []
        for agent in self._population:
            if self._rng.random() < self._mu:
                considered.append(int(self._rng.integers(num_options)))
                continue
            observed = self._companion_selector(
                agent.agent_id, self._population, self._rng
            )
            if observed is None:
                observed = int(self._rng.integers(num_options))
            considered.append(int(observed))

        # Stage 2: every agent decides based on the fresh signal of its option.
        for agent, option in zip(self._population, considered):
            agent.decide(option, int(rewards[option]), self._rng)

        self._time += 1
        return self.state()

    def run(self, environment: RewardEnvironment, horizon: int) -> Trajectory:
        """Simulate ``horizon`` steps against ``environment`` and record the trajectory."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._population.num_options:
            raise ValueError(
                "environment and population disagree on the number of options"
            )
        trajectory = Trajectory(initial_state=self.state())
        for _ in range(horizon):
            pre_step_popularity = self._population.popularity()
            rewards = environment.sample()
            new_state = self.step(rewards)
            trajectory.record(pre_step_popularity, rewards, new_state)
        return trajectory


def simulate_finite_population(
    environment: RewardEnvironment,
    population_size: int,
    horizon: int,
    *,
    beta: float = 0.6,
    mu: Optional[float] = None,
    rng: RngLike = None,
) -> Trajectory:
    """One-call helper: build the vectorised dynamics with paper defaults and run it.

    Parameters
    ----------
    environment:
        Reward environment providing the quality signals.
    population_size:
        Group size ``N``.
    horizon:
        Number of steps ``T``.
    beta:
        Adoption probability on a good signal (``alpha = 1 - beta``).
    mu:
        Exploration rate; defaults to ``delta^2 / 6`` (the theorem maximum).
    rng:
        Seed or generator.
    """
    dynamics = FinitePopulationDynamics(
        population_size=population_size,
        num_options=environment.num_options,
        adoption_rule=SymmetricAdoptionRule(beta),
        sampling_rule=MixtureSampling(mu) if mu is not None else None,
        rng=rng,
    )
    return dynamics.run(environment, horizon)
