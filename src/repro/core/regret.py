"""Regret accounting for both the finite and infinite population dynamics.

The paper's central quantity (Section 2.2) is the average regret

    ``Regret_N(T) = eta_1 - (1/T) * sum_{t=1}^T sum_j E[Q^{t-1}_j R^t_j]``

(and identically ``Regret_inf`` with ``P`` in place of ``Q``).  Two empirical
estimators are provided:

* :func:`empirical_regret` uses the realised rewards ``R^t`` — the in-sample
  quantity whose expectation is the paper's regret;
* :func:`expected_step_rewards` replaces ``R^t`` by the true qualities
  ``eta_j``, which is an unbiased lower-variance estimator because ``R^t`` is
  independent of ``Q^{t-1}`` (the signal at step ``t`` is drawn after the
  popularity was formed).

Averaging either estimator over independent replications (``average_regret``)
estimates the expectation in the definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_quality_vector


def _validate_matrices(
    popularities: np.ndarray, rewards: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    popularities = np.asarray(popularities, dtype=float)
    rewards = np.asarray(rewards, dtype=float)
    if popularities.ndim != 2 or rewards.ndim != 2:
        raise ValueError("popularities and rewards must be 2-D (T, m) matrices")
    if popularities.shape != rewards.shape:
        raise ValueError(
            f"popularities {popularities.shape} and rewards {rewards.shape} must "
            "have the same shape"
        )
    if popularities.shape[0] == 0:
        raise ValueError("need at least one time step")
    return popularities, rewards


def step_rewards(popularities: np.ndarray, rewards: np.ndarray) -> np.ndarray:
    """Per-step group reward ``sum_j Q^{t-1}_j R^t_j`` as a length-``T`` vector."""
    popularities, rewards = _validate_matrices(popularities, rewards)
    return np.einsum("tj,tj->t", popularities, rewards)


def empirical_regret(
    popularities: np.ndarray,
    rewards: np.ndarray,
    best_quality: float,
) -> float:
    """Realised average regret ``eta_1 - (1/T) sum_t <Q^{t-1}, R^t>``."""
    per_step = step_rewards(popularities, rewards)
    return float(best_quality - per_step.mean())


def expected_step_rewards(
    popularities: np.ndarray, qualities: Sequence[float]
) -> np.ndarray:
    """Per-step conditionally-expected group reward ``sum_j Q^{t-1}_j eta_j``."""
    qualities = check_quality_vector(qualities, "qualities")
    popularities = np.asarray(popularities, dtype=float)
    if popularities.ndim != 2 or popularities.shape[1] != qualities.size:
        raise ValueError(
            f"popularities must have shape (T, {qualities.size}), got {popularities.shape}"
        )
    return popularities @ qualities


def expected_regret(popularities: np.ndarray, qualities: Sequence[float]) -> float:
    """Average regret with rewards replaced by their expectations (lower variance)."""
    qualities = check_quality_vector(qualities, "qualities")
    per_step = expected_step_rewards(popularities, qualities)
    return float(qualities.max() - per_step.mean())


def best_option_share(popularities: np.ndarray, best_option: int) -> float:
    """Average pre-step popularity of the best option, ``(1/T) sum_t Q^{t-1}_1``.

    Theorem 4.3's second claim lower-bounds this by
    ``1 - 3*delta / (eta_1 - eta_2)``.
    """
    popularities = np.asarray(popularities, dtype=float)
    if popularities.ndim != 2 or popularities.shape[0] == 0:
        raise ValueError("popularities must be a non-empty (T, m) matrix")
    if not 0 <= best_option < popularities.shape[1]:
        raise ValueError(
            f"best_option {best_option} out of range for m={popularities.shape[1]}"
        )
    return float(popularities[:, best_option].mean())


def average_regret(per_replication_regrets: Iterable[float]) -> float:
    """Mean regret across independent replications (estimates the expectation)."""
    regrets = np.asarray(list(per_replication_regrets), dtype=float)
    if regrets.size == 0:
        raise ValueError("need at least one replication")
    return float(regrets.mean())


@dataclass
class RegretAccumulator:
    """Online regret accounting for streaming simulations.

    Feed one step at a time via :meth:`update`; query the running average
    regret at any point.  Useful for long-horizon runs where storing the full
    ``(T, m)`` matrices would be wasteful, e.g. the distributed protocol
    simulations.

    Parameters
    ----------
    best_quality:
        ``eta_1``, the benchmark the group is compared against.
    """

    best_quality: float
    _total_reward: float = field(default=0.0, init=False)
    _steps: int = field(default=0, init=False)
    _per_step: list = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.best_quality <= 1.0:
            raise ValueError(
                f"best_quality must be in [0, 1], got {self.best_quality}"
            )

    def update(self, popularity: Sequence[float], rewards: Sequence[int]) -> float:
        """Record one step; returns the step's group reward ``<Q^{t-1}, R^t>``."""
        popularity = np.asarray(popularity, dtype=float)
        rewards = np.asarray(rewards, dtype=float)
        if popularity.shape != rewards.shape or popularity.ndim != 1:
            raise ValueError(
                "popularity and rewards must be 1-D vectors of equal length"
            )
        reward = float(popularity @ rewards)
        self._total_reward += reward
        self._steps += 1
        self._per_step.append(reward)
        return reward

    @property
    def steps(self) -> int:
        """Number of steps accumulated so far."""
        return self._steps

    def average_reward(self) -> float:
        """Running average group reward ``(1/T) sum_t <Q^{t-1}, R^t>``."""
        if self._steps == 0:
            raise ValueError("no steps accumulated yet")
        return self._total_reward / self._steps

    def regret(self) -> float:
        """Running average regret ``eta_1 - average_reward()``."""
        return self.best_quality - self.average_reward()

    def regret_series(self) -> np.ndarray:
        """Regret after each prefix of steps (length ``T``), for convergence plots."""
        if self._steps == 0:
            return np.zeros(0)
        cumulative = np.cumsum(self._per_step)
        prefix_average = cumulative / np.arange(1, self._steps + 1)
        return self.best_quality - prefix_average
