"""The infinite-population limit: a stochastic multiplicative-weights process.

Equation (1) of the paper defines weights

    ``W^{t+1}_j = ((1 - mu) W^t_j + (mu/m) sum_k W^t_k) * beta^{R^{t+1}_j} (1-beta)^{1 - R^{t+1}_j}``

with ``W^0_j = 1``.  The induced probability distribution
``P^t_j = W^t_j / sum_k W^t_k`` is the fraction of an infinite population
adopting option ``j`` at time ``t``, and is what Theorem 4.3 bounds.

Because the raw weights shrink geometrically (every step multiplies by at most
``beta < 1``), the implementation tracks the *normalised* weights together
with the log of the total weight, which keeps the process numerically stable
for arbitrarily long horizons while still exposing the potential
``Phi^t = sum_j W^t_j`` (in log space) used in the proof of Theorem 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.adoption import AdoptionRule, SymmetricAdoptionRule
from repro.core.sampling import MixtureSampling, SamplingRule
from repro.environments.base import RewardEnvironment
from repro.utils.validation import check_positive_int, check_probability_vector


@dataclass
class InfiniteTrajectory:
    """Time series produced by the infinite-population dynamics.

    ``pre_step_distributions[t]`` is ``P^t`` (the distribution *before*
    observing ``rewards[t]``), matching the regret sum
    ``E[P^{t-1}_j R^t_j]`` of Theorem 4.3.
    """

    initial_distribution: np.ndarray
    pre_step_distributions: List[np.ndarray] = field(default_factory=list)
    rewards: List[np.ndarray] = field(default_factory=list)
    distributions: List[np.ndarray] = field(default_factory=list)
    log_potentials: List[float] = field(default_factory=list)

    @property
    def horizon(self) -> int:
        """Number of recorded steps ``T``."""
        return len(self.distributions)

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return int(self.initial_distribution.size)

    def distribution_matrix(self) -> np.ndarray:
        """Matrix of pre-step distributions ``P^{t-1}``, shape ``(T, m)``."""
        if not self.pre_step_distributions:
            return np.zeros((0, self.num_options))
        return np.stack(self.pre_step_distributions)

    def reward_matrix(self) -> np.ndarray:
        """Matrix of rewards ``R^t``, shape ``(T, m)``."""
        if not self.rewards:
            return np.zeros((0, self.num_options), dtype=np.int8)
        return np.stack(self.rewards)

    def final_distribution(self) -> np.ndarray:
        """The last distribution ``P^T`` (initial distribution if no steps)."""
        if self.distributions:
            return self.distributions[-1]
        return self.initial_distribution

    def best_option_series(self, best_option: int) -> np.ndarray:
        """Time series of the best option's pre-step probability ``P^{t-1}_1``."""
        matrix = self.distribution_matrix()
        if matrix.shape[0] == 0:
            return np.zeros(0)
        return matrix[:, best_option]


class InfinitePopulationDynamics:
    """The stochastic MWU process of Eq. (1), tracked in normalised form.

    Parameters
    ----------
    num_options:
        Number of options ``m``.
    adoption_rule:
        Supplies ``(alpha, beta)``; the weight multiplier on reward ``r`` is
        ``beta`` if ``r = 1`` and ``alpha`` otherwise, so the general-``alpha``
        variant discussed in Section 2.2 is supported.
    sampling_rule:
        Supplies the exploration rate ``mu`` of the regularising term.
    initial_distribution:
        Starting distribution ``P^0``; defaults to uniform (``W^0_j = 1``).
    """

    def __init__(
        self,
        num_options: int,
        adoption_rule: Optional[AdoptionRule] = None,
        sampling_rule: Optional[SamplingRule] = None,
        initial_distribution: Optional[Sequence[float]] = None,
    ) -> None:
        self._num_options = check_positive_int(num_options, "num_options")
        self._adoption_rule = adoption_rule or SymmetricAdoptionRule(0.6)
        if sampling_rule is None:
            delta = self._adoption_rule.delta
            mu = min(1.0, delta**2 / 6.0) if np.isfinite(delta) and delta > 0 else 0.01
            sampling_rule = MixtureSampling(mu)
        self._sampling_rule = sampling_rule
        if initial_distribution is None:
            initial = np.full(num_options, 1.0 / num_options)
        else:
            initial = check_probability_vector(
                initial_distribution, "initial_distribution"
            )
            if initial.size != num_options:
                raise ValueError("initial_distribution length must equal num_options")
        self._initial_distribution = initial.copy()
        self._distribution = initial.copy()
        # W^0_j = 1 for all j gives Phi^0 = m.
        self._log_potential = float(np.log(num_options))
        self._time = 0

    # ------------------------------------------------------------ properties
    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def adoption_rule(self) -> AdoptionRule:
        """The adoption rule supplying ``(alpha, beta)``."""
        return self._adoption_rule

    @property
    def sampling_rule(self) -> SamplingRule:
        """The sampling rule supplying ``mu``."""
        return self._sampling_rule

    @property
    def distribution(self) -> np.ndarray:
        """Current distribution ``P^t`` (copy)."""
        return self._distribution.copy()

    @property
    def log_potential(self) -> float:
        """``ln Phi^t`` where ``Phi^t = sum_j W^t_j`` is the proof's potential."""
        return self._log_potential

    @property
    def time(self) -> int:
        """Number of steps taken so far."""
        return self._time

    def reset(self, initial_distribution: Optional[Sequence[float]] = None) -> None:
        """Return to the initial distribution (optionally a new one)."""
        if initial_distribution is not None:
            initial = check_probability_vector(
                initial_distribution, "initial_distribution"
            )
            if initial.size != self._num_options:
                raise ValueError("initial_distribution length must equal num_options")
            self._initial_distribution = initial.copy()
        self._distribution = self._initial_distribution.copy()
        self._log_potential = float(np.log(self._num_options))
        self._time = 0

    # ------------------------------------------------------------------ step
    def step(self, rewards: Sequence[int]) -> np.ndarray:
        """Apply one update of Eq. (1) for the reward vector ``R^{t+1}``.

        Returns the new distribution ``P^{t+1}``.
        """
        rewards = np.asarray(rewards)
        if rewards.shape != (self._num_options,):
            raise ValueError(
                f"rewards must have shape ({self._num_options},), got {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary")

        mu = self._sampling_rule.exploration_rate
        alpha = self._adoption_rule.alpha
        beta = self._adoption_rule.beta
        mixed = (1.0 - mu) * self._distribution + mu / self._num_options
        multipliers = np.where(rewards == 1, beta, alpha)
        unnormalised = mixed * multipliers
        total = unnormalised.sum()
        if total <= 0.0:
            # Only possible when alpha == 0 and every option had a bad signal;
            # the population effectively restarts from the mixed distribution.
            self._distribution = mixed / mixed.sum()
            self._log_potential = -np.inf
        else:
            self._distribution = unnormalised / total
            self._log_potential += float(np.log(total))
        self._time += 1
        return self._distribution.copy()

    def run(self, environment: RewardEnvironment, horizon: int) -> InfiniteTrajectory:
        """Run against ``environment`` for ``horizon`` steps and record the trajectory."""
        horizon = check_positive_int(horizon, "horizon")
        if environment.num_options != self._num_options:
            raise ValueError(
                "environment and dynamics disagree on the number of options"
            )
        return self.run_on_rewards(environment.sample_many(horizon))

    def run_on_rewards(self, rewards: np.ndarray) -> InfiniteTrajectory:
        """Run on an explicit ``(T, m)`` reward matrix (used by the coupling)."""
        rewards = np.asarray(rewards)
        if rewards.ndim != 2 or rewards.shape[1] != self._num_options:
            raise ValueError(
                f"rewards must have shape (T, {self._num_options}), got {rewards.shape}"
            )
        trajectory = InfiniteTrajectory(initial_distribution=self._distribution.copy())
        for reward_vector in rewards:
            trajectory.pre_step_distributions.append(self._distribution.copy())
            new_distribution = self.step(reward_vector)
            trajectory.rewards.append(np.asarray(reward_vector, dtype=np.int8))
            trajectory.distributions.append(new_distribution)
            trajectory.log_potentials.append(self._log_potential)
        return trajectory


def simulate_infinite_population(
    environment: RewardEnvironment,
    horizon: int,
    *,
    beta: float = 0.6,
    mu: Optional[float] = None,
    initial_distribution: Optional[Sequence[float]] = None,
) -> InfiniteTrajectory:
    """One-call helper mirroring :func:`repro.core.dynamics.simulate_finite_population`."""
    adoption_rule = SymmetricAdoptionRule(beta)
    if mu is None:
        delta = adoption_rule.delta
        mu = min(1.0, delta**2 / 6.0) if np.isfinite(delta) and delta > 0 else 0.01
    dynamics = InfinitePopulationDynamics(
        num_options=environment.num_options,
        adoption_rule=adoption_rule,
        sampling_rule=MixtureSampling(mu),
        initial_distribution=initial_distribution,
    )
    return dynamics.run(environment, horizon)
