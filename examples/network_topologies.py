"""Social-network topologies: the paper's first open problem, empirically.

Section 6 asks how the group's efficiency changes when individuals can only
observe their neighbours in a social graph.  This script runs the
network-restricted dynamics over a family of standard topologies at the same
size and reports regret, best-option share and time-to-dominance against the
graphs' structural statistics (average degree, diameter, spectral gap).

The runs use the vectorised sparse engine (``engine="vectorized"``), which
advances every agent at once through one CSR matvec per step — the same
sweep on the per-agent reference loop takes orders of magnitude longer (see
``benchmarks/test_bench_network.py``).

Run with:  python examples/network_topologies.py
"""

from __future__ import annotations

import numpy as np

from repro import BernoulliEnvironment, best_option_share, expected_regret
from repro.analysis import dominance_time
from repro.network import SocialNetwork, simulate_network_dynamics
from repro.utils import format_table

POPULATION = 400
HORIZON = 400
QUALITIES = [0.85, 0.5, 0.5]
BETA = 0.62
REPLICATIONS = 3


def evaluate(network: SocialNetwork) -> dict:
    regrets, shares, dominance_times = [], [], []
    for seed in range(REPLICATIONS):
        environment = BernoulliEnvironment(QUALITIES, rng=seed)
        trajectory = simulate_network_dynamics(
            environment, network, HORIZON, beta=BETA, rng=100 + seed,
            engine="vectorized",
        )
        matrix = trajectory.popularity_matrix()
        regrets.append(expected_regret(matrix, QUALITIES))
        shares.append(best_option_share(matrix, 0))
        time_to_dominate = dominance_time(matrix[:, 0], threshold=0.6, sustain=10)
        dominance_times.append(HORIZON if time_to_dominate is None else time_to_dominate)
    metrics = network.metrics()
    return {
        "topology": metrics["name"],
        "avg degree": metrics["average_degree"],
        "diameter": metrics["diameter"] if metrics["diameter"] is not None else -1,
        "spectral gap": metrics["spectral_gap"],
        "regret": float(np.mean(regrets)),
        "best-option share": float(np.mean(shares)),
        "steps to 60% dominance": float(np.mean(dominance_times)),
    }


def main() -> None:
    networks = SocialNetwork.standard_suite(POPULATION, rng=0)
    rows = [evaluate(network) for network in networks]
    rows.sort(key=lambda row: row["regret"])

    print(
        f"Network-restricted social learning: N={POPULATION}, m={len(QUALITIES)}, "
        f"T={HORIZON}, beta={BETA} (averaged over {REPLICATIONS} runs)"
    )
    print(format_table(rows))
    print()
    print(
        "Well-mixed topologies (complete, Erdős–Rényi, small-world) approach the\n"
        "complete-graph efficiency of the original dynamics, while poorly-mixing\n"
        "graphs (rings, grids) learn more slowly — the efficiency of the group\n"
        "tracks how quickly the topology spreads information (its spectral gap),\n"
        "giving a concrete empirical answer to the paper's open question."
    )


if __name__ == "__main__":
    main()
