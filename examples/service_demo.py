"""Simulation-as-a-service: submit jobs to an embedded API daemon.

The ``repro serve`` daemon turns the one-shot CLI into a long-running
service: clients POST a job (the same configuration a ``repro sweep`` /
``network`` / ``protocol`` command derives), poll its status, and fetch
result rows — with every computed task landing in a shared content-addressed
result store, so a repeated job is served from cache at ~zero compute and
identical submissions in flight deduplicate onto one computation.

This script embeds the daemon in-process (what ``repro serve`` runs behind a
port) and walks the whole loop with the thin stdlib client:

1. start a daemon on an ephemeral port with a fresh result store,
2. submit a protocol sweep job over HTTP and poll it to completion,
3. re-submit the identical job and show it costs zero cache misses,
4. submit two identical jobs back-to-back and show they attach to one
   computation (in-flight dedup), and
5. print the daemon's /stats view.

Run with:  python examples/service_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.runtime import ResultStore
from repro.service import ServiceClient, protocol_request, start_daemon
from repro.utils import format_table

NODES = 2000
ROUNDS = 120
REPLICATIONS = 20
QUALITIES = [0.9, 0.6, 0.6, 0.5]


def main() -> None:
    store_path = Path(tempfile.mkdtemp(prefix="repro-service-")) / "results.sqlite"
    store = ResultStore(store_path)
    request = protocol_request(
        options=QUALITIES,
        nodes=NODES,
        rounds=ROUNDS,
        loss=0.2,
        mass_crash_fraction=0.3,
        replications=REPLICATIONS,
        engine="batched",
    )

    with start_daemon(store=store) as daemon:
        client = ServiceClient(daemon.url)
        print(f"daemon up at {daemon.url}: {client.healthz()}")

        print("\n-- cold job: computed by the worker pool --")
        submitted = client.submit(request)
        print(f"submitted {submitted['job_id']} (status {submitted['status']})")
        result = client.wait(submitted["job_id"])
        print(result["description"])
        print(format_table(result["rows"], float_format="{:.4f}"))
        print(
            f"cache: {result['cache_hits']} hits, "
            f"{result['cache_misses']} misses"
        )

        print("\n-- identical job again: served from the result store --")
        warm = client.wait(client.submit(request)["job_id"])
        print(
            f"cache: {warm['cache_hits']} hits, {warm['cache_misses']} misses "
            f"(rows identical: {warm['rows'] == result['rows']})"
        )

        print("\n-- two identical submissions in flight: one computation --")
        fresh = protocol_request(
            options=QUALITIES,
            nodes=NODES,
            rounds=ROUNDS,
            loss=0.35,
            replications=REPLICATIONS,
            engine="batched",
        )
        first = client.submit(fresh)
        second = client.submit(fresh)
        print(
            f"first -> {first['job_id']}, second -> {second['job_id']} "
            f"(attached: {second['attached']})"
        )
        client.wait(first["job_id"])

        stats = client.stats()
        print(
            f"\n/stats: store {stats['store']['rows']} rows, "
            f"{stats['store']['hits']} hits, {stats['store']['misses']} misses; "
            f"queue completed {stats['queue']['completed']}, "
            f"deduplicated {stats['queue']['deduplicated']}"
        )

    store.close()


if __name__ == "__main__":
    main()
