"""Sensor-network MWU: the protocol as a low-memory distributed algorithm.

The paper's introduction points out that the learning dynamics "can inform
novel, low-memory, low-communication, distributed implementations of the MWU
algorithm ... perhaps appropriate for low-power devices in distributed
settings such as sensor networks or the internet-of-things."

Scenario: a fleet of battery-powered sensors must agree on which of several
radio channels to use.  Each round a channel either works (signal 1) or is
jammed (signal 0); channel 0 is genuinely the cleanest.  Every sensor stores
only its current channel and exchanges two tiny messages per round with one
random peer.  The script stresses the protocol with message loss and a
mid-run mass failure, and shows the surviving fleet still concentrates on
the best channel.

Engine: the array-ops :class:`repro.distributed.VectorizedProtocol`, which
simulates the same lossy round law as the message-passing loop but runs a
5000-sensor fleet orders of magnitude faster (swap in
``DistributedLearningProtocol`` with a ``LossyTransport`` to model
per-message *delay*, the one feature only the loop engine has).

Run with:  python examples/sensor_network.py
"""

from __future__ import annotations

from repro import BernoulliEnvironment
from repro.core.adoption import SymmetricAdoptionRule
from repro.distributed import CrashFailureModel, VectorizedProtocol
from repro.utils import ascii_line_plot, format_table

NUM_SENSORS = 5000
NUM_CHANNELS = 4
ROUNDS = 400
CHANNEL_QUALITIES = [0.9, 0.6, 0.6, 0.5]
BETA = 0.65


def run_fleet(loss_rate: float, crash_fraction: float, seed: int):
    environment = BernoulliEnvironment(CHANNEL_QUALITIES, rng=seed)
    protocol = VectorizedProtocol(
        num_nodes=NUM_SENSORS,
        num_options=NUM_CHANNELS,
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=0.03,
        loss_rate=loss_rate,
        failure_model=CrashFailureModel(
            mass_failure_round=ROUNDS // 2,
            mass_failure_fraction=crash_fraction,
            rng=seed + 2,
        ),
        rng=seed + 3,
    )
    return protocol.run(environment, ROUNDS)


def main() -> None:
    scenarios = [
        {"name": "perfect network", "loss": 0.0, "crash": 0.0},
        {"name": "10% loss", "loss": 0.1, "crash": 0.0},
        {"name": "30% loss", "loss": 0.3, "crash": 0.0},
        {"name": "10% loss + 40% of sensors die mid-run", "loss": 0.1, "crash": 0.4},
    ]

    rows = []
    series = {}
    for index, scenario in enumerate(scenarios):
        result = run_fleet(scenario["loss"], scenario["crash"], seed=10 * index)
        rows.append(
            {
                "scenario": scenario["name"],
                "regret": result.regret,
                "share on best channel": result.best_option_share,
                "messages sent": result.transport_stats["sent"],
                "messages dropped": result.transport_stats["dropped"],
                "sensors alive at end": int(result.alive_series[-1]),
            }
        )
        series[scenario["name"]] = result.popularity_matrix[:, 0]

    print(
        f"{NUM_SENSORS} sensors agreeing on 1 of {NUM_CHANNELS} radio channels over {ROUNDS} rounds"
    )
    print(format_table(rows))
    print()
    print(
        ascii_line_plot(
            series,
            title="Fraction of (alive) sensors on the best channel",
            width=72,
            height=14,
        )
    )
    print()
    print(
        "Each sensor stores a single integer and exchanges O(1) messages per round,\n"
        "yet the fleet implements a stochastic multiplicative-weights update whose\n"
        "regret degrades gracefully under message loss and node failures."
    )


if __name__ == "__main__":
    main()
