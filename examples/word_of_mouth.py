"""Word-of-mouth product adoption: the Ellison-Fudenberg (1995) example.

Section 2.1's second worked example shows how a model with continuous-valued
rewards and player-specific shocks reduces to the paper's binary framework:

* two products with continuous quality draws ``r_1 ~ N(gap, 1)``, ``r_2 ~ N(0, 1)``;
* consumers experience idiosyncratic shocks, so their adopt/reject decision is
  a noisy comparison of the two most recent experiences;
* the reduction yields ``eta_1 = P[r_1 > r_2]`` and adoption parameters
  ``(alpha, beta)`` with ``alpha < beta``.

This script performs the reduction numerically, runs the finite-population
dynamics with the implied parameters, and shows that the consumer population
converges to the genuinely better product even though no consumer ever stores
more than its current choice.

Run with:  python examples/word_of_mouth.py
"""

from __future__ import annotations

from repro import EllisonFudenbergEnvironment, best_option_share, expected_regret
from repro.core.adoption import GeneralAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.utils import ascii_line_plot, format_table

NUM_CONSUMERS = 5000
WEEKS = 600


def main() -> None:
    rows = []
    share_series = {}
    for gap in (0.25, 0.5, 1.0):
        environment = EllisonFudenbergEnvironment.gaussian(
            mean_gap=gap, reward_scale=1.0, shock_scale=1.0, rng=0
        )
        alpha, beta = environment.implied_adoption_parameters()
        qualities = environment.qualities

        dynamics = FinitePopulationDynamics(
            population_size=NUM_CONSUMERS,
            num_options=2,
            adoption_rule=GeneralAdoptionRule(alpha=alpha, beta=beta),
            sampling_rule=MixtureSampling(0.02),
            rng=1,
        )
        trajectory = dynamics.run(environment, WEEKS)
        matrix = trajectory.popularity_matrix()

        rows.append(
            {
                "quality gap": gap,
                "implied eta_1": qualities[0],
                "implied alpha": alpha,
                "implied beta": beta,
                "avg share product 1": best_option_share(matrix, 0),
                "final share product 1": matrix[-1, 0],
                "regret": expected_regret(matrix, qualities),
            }
        )
        share_series[f"gap={gap}"] = matrix[:, 0]

    print(f"{NUM_CONSUMERS} consumers choosing between two products for {WEEKS} weeks")
    print(format_table(rows))
    print()
    print(
        ascii_line_plot(
            share_series,
            title="Share of consumers on the better product (word-of-mouth dynamics)",
            width=72,
            height=14,
        )
    )
    print()
    print(
        "Larger true quality gaps both sharpen the implied reward signal (eta_1\n"
        "further from 1/2) and make consumers more responsive (beta - alpha grows),\n"
        "so the population locks onto the better product faster and more firmly —\n"
        "exactly the behaviour the Ellison-Fudenberg reduction predicts."
    )


if __name__ == "__main__":
    main()
