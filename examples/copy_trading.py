"""Copy-trading investors: the Krafft et al. (2016) instantiation of the model.

The paper's simplest worked example (Section 2.1) models amateur investors on
a social-trading platform: each user can copy the portfolio choice of a random
other user and then decides whether to keep it based on the most recent
return.  In the paper's notation this is ``alpha = 1 - beta`` with
``beta >= 1/2``, and qualities ``eta_1 > 1/2 = eta_2 = ... = eta_m``.

The script compares the group of copy-traders against

* individually rational investors running per-individual Thompson sampling
  (full per-user memory of past returns), and
* a "follow the crowd" group that copies without ever checking returns,

all on the same realised return sequences, and reports how much of the
group sits on the best asset over time.

Run with:  python examples/copy_trading.py
"""

from __future__ import annotations

from repro import BernoulliEnvironment, RecordedRewardSequence, empirical_regret
from repro.baselines import (
    FollowTheCrowd,
    IndividualThompsonSampling,
    SocialLearningBaseline,
)
from repro.core.adoption import SymmetricAdoptionRule
from repro.utils import ascii_line_plot, format_table

NUM_ASSETS = 6
NUM_INVESTORS = 2000
TRADING_DAYS = 500
BETA = 0.62  # how strongly a good recent return persuades an investor


def main() -> None:
    # Asset 0 beats the market 70% of days; the others are coin flips.
    qualities = [0.7] + [0.5] * (NUM_ASSETS - 1)
    market = BernoulliEnvironment(qualities, rng=0)
    recorded = RecordedRewardSequence.from_environment(market, TRADING_DAYS)
    returns = recorded.rewards

    groups = {
        "copy-traders (paper dynamics)": SocialLearningBaseline(
            NUM_ASSETS,
            population_size=NUM_INVESTORS,
            adoption_rule=SymmetricAdoptionRule(BETA),
            rng=1,
        ),
        "individual Thompson sampling": IndividualThompsonSampling(
            NUM_ASSETS, population_size=NUM_INVESTORS, rng=2
        ),
        "follow the crowd (no signals)": FollowTheCrowd(
            NUM_ASSETS, population_size=NUM_INVESTORS, exploration_rate=0.01, rng=3
        ),
    }

    rows = []
    best_asset_series = {}
    for name, group in groups.items():
        distributions = group.run_on_rewards(returns.copy())
        rows.append(
            {
                "group": name,
                "avg regret": empirical_regret(distributions, returns, best_quality=0.7),
                "final share on best asset": distributions[-1, 0],
                "avg share on best asset": distributions[:, 0].mean(),
            }
        )
        best_asset_series[name.split(" (")[0]] = distributions[:, 0]

    print(f"{NUM_INVESTORS} investors, {NUM_ASSETS} assets, {TRADING_DAYS} trading days")
    print(format_table(rows))
    print()
    print(
        ascii_line_plot(
            best_asset_series,
            title="Fraction of investors holding the best asset",
            width=72,
            height=14,
        )
    )
    print()
    print(
        "The memoryless copy-traders concentrate on the best asset almost as\n"
        "effectively as investors running a full Bayesian bandit algorithm, and\n"
        "dramatically better than imitation without quality signals."
    )


if __name__ == "__main__":
    main()
