"""Quickstart: the distributed social learning dynamics end to end.

This script walks through the paper's model on a small example:

1. build a Bernoulli option environment with one clearly-best option,
2. run the finite-population distributed learning dynamics,
3. run the infinite-population (stochastic MWU) benchmark on the same
   parameters,
4. compare the measured regret to the paper's Theorem 4.3 / 4.4 bounds,
5. print an ASCII chart of the best option's popularity over time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BernoulliEnvironment,
    TheoryBounds,
    best_option_share,
    expected_regret,
    simulate_finite_population,
    simulate_infinite_population,
)
from repro.utils import ascii_line_plot, format_table


def main() -> None:
    # ------------------------------------------------------------------ setup
    # Five options; option 0 is good 80% of the time, the rest 50%.
    qualities = [0.8, 0.5, 0.5, 0.5, 0.5]
    beta = 0.6                      # adopt a good-signalled option w.p. 0.6
    bounds = TheoryBounds(num_options=len(qualities), beta=beta,
                          mu=0.027, population_size=5000)
    mu = bounds.mu                  # exploration rate (satisfies 6*mu <= delta^2)
    # Theorem 4.3 needs T >= ln(m)/delta^2 (~10 here); run well past it so the
    # popularity chart shows the long-run behaviour too.
    horizon = int(np.ceil(bounds.minimum_horizon())) * 30

    print("Parameters")
    print(format_table([{
        "m": len(qualities), "N": 5000, "beta": beta, "mu": mu,
        "delta": bounds.delta, "horizon": horizon,
    }]))
    print()

    # -------------------------------------------------- finite population run
    environment = BernoulliEnvironment(qualities, rng=0)
    finite = simulate_finite_population(
        environment, population_size=5000, horizon=horizon, beta=beta, mu=mu, rng=1
    )
    finite_regret = expected_regret(finite.popularity_matrix(), qualities)
    finite_share = best_option_share(finite.popularity_matrix(), 0)

    # ------------------------------------------------ infinite population run
    environment = BernoulliEnvironment(qualities, rng=2)
    infinite = simulate_infinite_population(environment, horizon, beta=beta, mu=mu)
    infinite_regret = expected_regret(infinite.distribution_matrix(), qualities)

    # ----------------------------------------------------------------- report
    print("Results vs. paper bounds")
    print(format_table([
        {
            "process": "finite population (Thm 4.4)",
            "measured regret": finite_regret,
            "paper bound": bounds.finite_regret_bound(),
            "best-option share": finite_share,
        },
        {
            "process": "infinite population (Thm 4.3)",
            "measured regret": infinite_regret,
            "paper bound": bounds.infinite_regret_bound(),
            "best-option share": best_option_share(infinite.distribution_matrix(), 0),
        },
    ]))
    print()
    print(ascii_line_plot(
        {
            "finite N=5000": finite.best_option_popularity(0),
            "infinite": infinite.best_option_series(0),
        },
        title="Popularity of the best option over time",
        width=72,
        height=14,
    ))

    # Scaling out: replication studies and parameter sweeps can be sharded
    # across worker processes and cached in a content-addressed result store
    # (see the README's "Scaling out" guide), e.g.
    #
    #   python -m repro sweep --populations 1000 10000 --betas 0.6 0.7 \
    #       --replications 50 --workers 4 --store sweep.sqlite
    #
    # Re-running the same command serves finished work from the store, so an
    # interrupted sweep resumes instead of restarting.
    print()
    print("Next: shard a sweep across cores with")
    print("  python -m repro sweep --workers 4 --store sweep.sqlite  [...]")


if __name__ == "__main__":
    main()
