"""Setup shim.

The execution environment for this reproduction is offline and ships
setuptools without the ``wheel`` package, so PEP 517/660 editable installs
(which must build a wheel) cannot run.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on environments that do have ``wheel``) fall back to the
legacy ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
